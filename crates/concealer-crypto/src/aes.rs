//! AES block cipher (FIPS-197), supporting 128-bit and 256-bit keys.
//!
//! The implementation is a straightforward byte-oriented version of the
//! specification: SubBytes / ShiftRows / MixColumns / AddRoundKey over a
//! 4×4 column-major state. It is deliberately simple — the goal is a
//! correct, dependency-free block cipher on which the deterministic ([`crate::det`])
//! and randomized ([`crate::ctr`]) modes used by Concealer are built.
//!
//! Test vectors from FIPS-197 Appendix C are included in the unit tests.

use crate::{CryptoError, Result};

/// The AES block size in bytes.
pub const BLOCK_SIZE: usize = 16;

/// An AES block.
pub type Block = [u8; BLOCK_SIZE];

/// Forward S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Inverse S-box.
const INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

/// Round constants used by the key schedule.
const RCON: [u8; 15] = [
    0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d, 0x9a,
];

/// Multiply by `x` (i.e. 0x02) in GF(2^8) with the AES polynomial.
#[inline]
fn xtime(b: u8) -> u8 {
    let hi = b & 0x80;
    let mut r = b << 1;
    if hi != 0 {
        r ^= 0x1b;
    }
    r
}

/// General GF(2^8) multiplication (only small constants are ever used).
#[inline]
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// Key size variants supported by [`Aes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySize {
    /// AES-128: 16-byte key, 10 rounds.
    Aes128,
    /// AES-256: 32-byte key, 14 rounds.
    Aes256,
}

impl KeySize {
    fn rounds(self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes256 => 14,
        }
    }

    fn key_words(self) -> usize {
        match self {
            KeySize::Aes128 => 4,
            KeySize::Aes256 => 8,
        }
    }
}

/// An expanded AES key ready for block encryption / decryption.
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    rounds: usize,
}

impl std::fmt::Debug for Aes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes").field("rounds", &self.rounds).finish()
    }
}

impl Aes {
    /// Expand `key` (16 or 32 bytes) into round keys.
    pub fn new(key: &[u8]) -> Result<Self> {
        let size = match key.len() {
            16 => KeySize::Aes128,
            32 => KeySize::Aes256,
            got => {
                return Err(CryptoError::InvalidKeyLength {
                    got,
                    expected: "16 (AES-128) or 32 (AES-256)",
                })
            }
        };
        Ok(Self::with_size(key, size))
    }

    /// Expand an AES-256 key. Panics if `key` is not 32 bytes; preferred
    /// constructor inside the workspace where key lengths are static.
    #[must_use]
    pub fn new_256(key: &[u8; 32]) -> Self {
        Self::with_size(key, KeySize::Aes256)
    }

    /// Expand an AES-128 key.
    #[must_use]
    pub fn new_128(key: &[u8; 16]) -> Self {
        Self::with_size(key, KeySize::Aes128)
    }

    fn with_size(key: &[u8], size: KeySize) -> Self {
        let nk = size.key_words();
        let rounds = size.rounds();
        let total_words = 4 * (rounds + 1);

        // Key schedule over 4-byte words.
        let mut w = vec![[0u8; 4]; total_words];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            w[i].copy_from_slice(chunk);
        }
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                // RotWord + SubWord + Rcon
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / nk - 1];
            } else if nk > 6 && i % nk == 4 {
                for b in temp.iter_mut() {
                    *b = SBOX[*b as usize];
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - nk][j] ^ temp[j];
            }
        }

        let mut round_keys = Vec::with_capacity(rounds + 1);
        for r in 0..=rounds {
            let mut rk = [0u8; 16];
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
            round_keys.push(rk);
        }
        Aes { round_keys, rounds }
    }

    /// Number of rounds for this key size (10 or 14).
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Encrypt a single 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut Block) {
        add_round_key(block, &self.round_keys[0]);
        for r in 1..self.rounds {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[r]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[self.rounds]);
    }

    /// Decrypt a single 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut Block) {
        add_round_key(block, &self.round_keys[self.rounds]);
        inv_shift_rows(block);
        inv_sub_bytes(block);
        for r in (1..self.rounds).rev() {
            add_round_key(block, &self.round_keys[r]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            inv_sub_bytes(block);
        }
        add_round_key(block, &self.round_keys[0]);
    }

    /// Encrypt a copy of `block` and return it.
    #[must_use]
    pub fn encrypt_block_copy(&self, block: &Block) -> Block {
        let mut b = *block;
        self.encrypt_block(&mut b);
        b
    }

    /// Decrypt a copy of `block` and return it.
    #[must_use]
    pub fn decrypt_block_copy(&self, block: &Block) -> Block {
        let mut b = *block;
        self.decrypt_block(&mut b);
        b
    }
}

#[inline]
fn add_round_key(state: &mut Block, rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

#[inline]
fn sub_bytes(state: &mut Block) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

#[inline]
fn inv_sub_bytes(state: &mut Block) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

// State is column-major: state[4*c + r] is row r, column c.
#[inline]
fn shift_rows(state: &mut Block) {
    // Row 1: shift left by 1.
    let t = state[1];
    state[1] = state[5];
    state[5] = state[9];
    state[9] = state[13];
    state[13] = t;
    // Row 2: shift left by 2.
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: shift left by 3 (== right by 1).
    let t = state[15];
    state[15] = state[11];
    state[11] = state[7];
    state[7] = state[3];
    state[3] = t;
}

#[inline]
fn inv_shift_rows(state: &mut Block) {
    // Row 1: shift right by 1.
    let t = state[13];
    state[13] = state[9];
    state[9] = state[5];
    state[5] = state[1];
    state[1] = t;
    // Row 2: shift right by 2.
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: shift right by 3 (== left by 1).
    let t = state[3];
    state[3] = state[7];
    state[7] = state[11];
    state[11] = state[15];
    state[15] = t;
}

#[inline]
fn mix_columns(state: &mut Block) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
        state[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

#[inline]
fn inv_mix_columns(state: &mut Block) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] =
            gmul(col[0], 0x0e) ^ gmul(col[1], 0x0b) ^ gmul(col[2], 0x0d) ^ gmul(col[3], 0x09);
        state[4 * c + 1] =
            gmul(col[0], 0x09) ^ gmul(col[1], 0x0e) ^ gmul(col[2], 0x0b) ^ gmul(col[3], 0x0d);
        state[4 * c + 2] =
            gmul(col[0], 0x0d) ^ gmul(col[1], 0x09) ^ gmul(col[2], 0x0e) ^ gmul(col[3], 0x0b);
        state[4 * c + 3] =
            gmul(col[0], 0x0b) ^ gmul(col[1], 0x0d) ^ gmul(col[2], 0x09) ^ gmul(col[3], 0x0e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn fips197_aes128_vector() {
        // FIPS-197 Appendix C.1
        let key = hex("000102030405060708090a0b0c0d0e0f");
        let plain = hex("00112233445566778899aabbccddeeff");
        let expect = hex("69c4e0d86a7b0430d8cdb78070b4c55a");

        let aes = Aes::new(&key).unwrap();
        let mut block: Block = plain.clone().try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), expect);

        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), plain);
    }

    #[test]
    fn fips197_aes256_vector() {
        // FIPS-197 Appendix C.3
        let key = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let plain = hex("00112233445566778899aabbccddeeff");
        let expect = hex("8ea2b7ca516745bfeafc49904b496089");

        let aes = Aes::new(&key).unwrap();
        let mut block: Block = plain.clone().try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), expect);

        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), plain);
    }

    #[test]
    fn rejects_bad_key_length() {
        assert!(matches!(
            Aes::new(&[0u8; 24]),
            Err(CryptoError::InvalidKeyLength { got: 24, .. })
        ));
        assert!(matches!(
            Aes::new(&[]),
            Err(CryptoError::InvalidKeyLength { got: 0, .. })
        ));
    }

    #[test]
    fn encrypt_decrypt_roundtrip_many_blocks() {
        let aes = Aes::new_256(&[7u8; 32]);
        for i in 0..64u8 {
            let mut block = [i; 16];
            let original = block;
            aes.encrypt_block(&mut block);
            assert_ne!(block, original, "ciphertext must differ from plaintext");
            aes.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let a = Aes::new_256(&[1u8; 32]);
        let b = Aes::new_256(&[2u8; 32]);
        let block = [0x42u8; 16];
        assert_ne!(a.encrypt_block_copy(&block), b.encrypt_block_copy(&block));
    }

    #[test]
    fn inv_sbox_is_inverse() {
        for i in 0..=255u8 {
            assert_eq!(INV_SBOX[SBOX[i as usize] as usize], i);
        }
    }

    #[test]
    fn debug_does_not_leak_key() {
        let aes = Aes::new_256(&[9u8; 32]);
        let s = format!("{aes:?}");
        assert!(
            !s.contains('9'),
            "debug output should not include key bytes: {s}"
        );
        assert!(s.contains("rounds"));
    }
}
