//! Error type shared by all primitives in this crate.

use std::fmt;

/// Errors produced by the cryptographic substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A key of unsupported length was supplied to a cipher.
    InvalidKeyLength {
        /// The length that was supplied.
        got: usize,
        /// Human-readable list of accepted lengths.
        expected: &'static str,
    },
    /// Ciphertext is malformed (too short to contain the tag/nonce, or not a
    /// whole number of blocks where required).
    MalformedCiphertext {
        /// Description of what was wrong.
        reason: &'static str,
    },
    /// Authentication failed: the tag did not verify, meaning the ciphertext
    /// was corrupted or produced under a different key.
    AuthenticationFailed,
    /// A caller asked for an output length this primitive cannot produce.
    InvalidOutputLength {
        /// The requested length.
        requested: usize,
        /// The maximum supported length.
        max: usize,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidKeyLength { got, expected } => {
                write!(f, "invalid key length {got}, expected {expected}")
            }
            CryptoError::MalformedCiphertext { reason } => {
                write!(f, "malformed ciphertext: {reason}")
            }
            CryptoError::AuthenticationFailed => write!(f, "authentication failed"),
            CryptoError::InvalidOutputLength { requested, max } => {
                write!(f, "invalid output length {requested} (max {max})")
            }
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CryptoError::InvalidKeyLength {
            got: 7,
            expected: "16 or 32",
        };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains("16 or 32"));

        let e = CryptoError::AuthenticationFailed;
        assert_eq!(e.to_string(), "authentication failed");
    }
}
