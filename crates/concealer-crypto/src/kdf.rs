//! Key derivation.
//!
//! The paper derives a fresh key per epoch as `k ← sk || eid` (§3, "Key
//! generation"), and a fresh re-encryption key per round as
//! `k ← sk || eid || counter` (§6, footnote 7). Directly concatenating key
//! material with public values is brittle, so this reproduction uses an
//! HKDF-like expansion based on HMAC-SHA-256: each derived key is
//! `HMAC(sk, purpose || eid || counter || index)`, which preserves the
//! property the paper needs — the same `(sk, eid)` always yields the same
//! epoch key, different epochs yield unrelated keys — while being a standard
//! extract-and-expand construction.

use crate::hmac::HmacSha256;

/// Labels separating the independent sub-keys derived for one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyPurpose {
    /// Key for the deterministic cipher's CMAC (synthetic IV) half.
    DetMac,
    /// Key for the deterministic cipher's CTR half.
    DetEnc,
    /// Key for the randomized cipher's CTR half.
    RandEnc,
    /// Key for the randomized cipher's MAC half.
    RandMac,
    /// Key for the grid hash `H` that maps attribute values to grid cells.
    GridHash,
    /// Key for the verifiable-tag hash chain.
    HashChain,
    /// Key for pseudo-random permutation of tuples before transmission.
    Permutation,
    /// Per-epoch seal secret recorded (wrapped) in the store's key vault,
    /// so the lifecycle layer can prove an epoch is readable under the
    /// current master without touching the epoch's data keys.
    EpochSeal,
    /// Key-encryption key for one master-key *generation*: wraps the
    /// per-epoch seal secrets in the manifest's key vault. `epoch_id`
    /// carries the generation counter for this purpose.
    KeyWrap,
}

impl KeyPurpose {
    fn label(self) -> &'static [u8] {
        match self {
            KeyPurpose::DetMac => b"concealer/det-mac",
            KeyPurpose::DetEnc => b"concealer/det-enc",
            KeyPurpose::RandEnc => b"concealer/rand-enc",
            KeyPurpose::RandMac => b"concealer/rand-mac",
            KeyPurpose::GridHash => b"concealer/grid-hash",
            KeyPurpose::HashChain => b"concealer/hash-chain",
            KeyPurpose::Permutation => b"concealer/permutation",
            KeyPurpose::EpochSeal => b"concealer/epoch-seal",
            KeyPurpose::KeyWrap => b"concealer/key-wrap",
        }
    }
}

/// Derive a 32-byte sub-key from the master secret.
///
/// * `sk` — the secret shared between DP and the enclave.
/// * `purpose` — domain-separation label.
/// * `epoch_id` — the epoch (round) identifier; the paper uses the epoch's
///   starting timestamp.
/// * `round_counter` — the re-encryption counter used by the dynamic
///   insertion protocol (§6); 0 for freshly ingested data.
#[must_use]
pub fn derive_key(
    sk: &[u8; 32],
    purpose: KeyPurpose,
    epoch_id: u64,
    round_counter: u64,
) -> [u8; 32] {
    let mut mac = HmacSha256::new(sk);
    mac.update(purpose.label());
    mac.update(&epoch_id.to_be_bytes());
    mac.update(&round_counter.to_be_bytes());
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let sk = [5u8; 32];
        assert_eq!(
            derive_key(&sk, KeyPurpose::DetMac, 42, 0),
            derive_key(&sk, KeyPurpose::DetMac, 42, 0)
        );
    }

    #[test]
    fn epoch_separation() {
        let sk = [5u8; 32];
        assert_ne!(
            derive_key(&sk, KeyPurpose::DetMac, 42, 0),
            derive_key(&sk, KeyPurpose::DetMac, 43, 0)
        );
    }

    #[test]
    fn purpose_separation() {
        let sk = [5u8; 32];
        let purposes = [
            KeyPurpose::DetMac,
            KeyPurpose::DetEnc,
            KeyPurpose::RandEnc,
            KeyPurpose::RandMac,
            KeyPurpose::GridHash,
            KeyPurpose::HashChain,
            KeyPurpose::Permutation,
            KeyPurpose::EpochSeal,
            KeyPurpose::KeyWrap,
        ];
        for (i, a) in purposes.iter().enumerate() {
            for b in purposes.iter().skip(i + 1) {
                assert_ne!(derive_key(&sk, *a, 1, 0), derive_key(&sk, *b, 1, 0));
            }
        }
    }

    #[test]
    fn round_counter_separation() {
        let sk = [5u8; 32];
        assert_ne!(
            derive_key(&sk, KeyPurpose::DetEnc, 1, 0),
            derive_key(&sk, KeyPurpose::DetEnc, 1, 1)
        );
    }

    #[test]
    fn master_key_separation() {
        assert_ne!(
            derive_key(&[1u8; 32], KeyPurpose::DetEnc, 1, 0),
            derive_key(&[2u8; 32], KeyPurpose::DetEnc, 1, 0)
        );
    }
}
