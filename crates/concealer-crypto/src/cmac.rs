//! AES-CMAC (NIST SP 800-38B / RFC 4493).
//!
//! CMAC is the pseudorandom function used by the deterministic encryption
//! mode in [`crate::det`]: the synthetic IV for a plaintext is
//! `CMAC(k_mac, plaintext)`, which makes the whole construction
//! deterministic (same plaintext ⇒ same ciphertext under a fixed epoch key)
//! while remaining a secure PRF — exactly the property the paper's
//! `E_k(value || timestamp)` columns need.

use crate::aes::{Aes, Block, BLOCK_SIZE};

/// AES-CMAC instance.
#[derive(Clone)]
pub struct Cmac {
    cipher: Aes,
    k1: Block,
    k2: Block,
}

fn dbl(block: &Block) -> Block {
    let mut out = [0u8; BLOCK_SIZE];
    let mut carry = 0u8;
    for i in (0..BLOCK_SIZE).rev() {
        let b = block[i];
        out[i] = (b << 1) | carry;
        carry = b >> 7;
    }
    if carry == 1 {
        out[BLOCK_SIZE - 1] ^= 0x87;
    }
    out
}

impl Cmac {
    /// Build a CMAC instance from an already-expanded AES key.
    #[must_use]
    pub fn new(cipher: Aes) -> Self {
        let zero = [0u8; BLOCK_SIZE];
        let l = cipher.encrypt_block_copy(&zero);
        let k1 = dbl(&l);
        let k2 = dbl(&k1);
        Cmac { cipher, k1, k2 }
    }

    /// Compute the CMAC tag over `message`.
    #[must_use]
    pub fn mac(&self, message: &[u8]) -> Block {
        let n_blocks = if message.is_empty() {
            1
        } else {
            message.len().div_ceil(BLOCK_SIZE)
        };
        let last_complete = !message.is_empty() && message.len() % BLOCK_SIZE == 0;

        let mut x = [0u8; BLOCK_SIZE];
        // Process all but the last block.
        for i in 0..n_blocks - 1 {
            let mut block = [0u8; BLOCK_SIZE];
            block.copy_from_slice(&message[i * BLOCK_SIZE..(i + 1) * BLOCK_SIZE]);
            for j in 0..BLOCK_SIZE {
                x[j] ^= block[j];
            }
            self.cipher.encrypt_block(&mut x);
        }

        // Last block: XOR with K1 (complete) or pad + K2 (incomplete).
        let mut last = [0u8; BLOCK_SIZE];
        let start = (n_blocks - 1) * BLOCK_SIZE;
        if last_complete {
            last.copy_from_slice(&message[start..start + BLOCK_SIZE]);
            for (b, k) in last.iter_mut().zip(&self.k1) {
                *b ^= k;
            }
        } else {
            let rem = &message[start..];
            last[..rem.len()].copy_from_slice(rem);
            last[rem.len()] = 0x80;
            for (b, k) in last.iter_mut().zip(&self.k2) {
                *b ^= k;
            }
        }

        for j in 0..BLOCK_SIZE {
            x[j] ^= last[j];
        }
        self.cipher.encrypt_block(&mut x);
        x
    }

    /// Verify a tag in constant time.
    #[must_use]
    pub fn verify(&self, message: &[u8], tag: &[u8]) -> bool {
        crate::ct_eq(&self.mac(message), tag)
    }
}

/// One-shot AES-CMAC with a 16- or 32-byte key.
#[must_use]
pub fn aes_cmac(key: &[u8], message: &[u8]) -> Block {
    let cipher = Aes::new(key).expect("aes_cmac: key must be 16 or 32 bytes");
    Cmac::new(cipher).mac(message)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 4493 test vectors (AES-128 key).
    const KEY: &str = "2b7e151628aed2a6abf7158809cf4f3c";

    #[test]
    fn rfc4493_empty_message() {
        let tag = aes_cmac(&hex(KEY), b"");
        assert_eq!(tag.to_vec(), hex("bb1d6929e95937287fa37d129b756746"));
    }

    #[test]
    fn rfc4493_16_bytes() {
        let msg = hex("6bc1bee22e409f96e93d7e117393172a");
        let tag = aes_cmac(&hex(KEY), &msg);
        assert_eq!(tag.to_vec(), hex("070a16b46b4d4144f79bdd9dd04a287c"));
    }

    #[test]
    fn rfc4493_40_bytes() {
        let msg =
            hex("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411");
        let tag = aes_cmac(&hex(KEY), &msg);
        assert_eq!(tag.to_vec(), hex("dfa66747de9ae63030ca32611497c827"));
    }

    #[test]
    fn rfc4493_64_bytes() {
        let msg = hex(
            "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710",
        );
        let tag = aes_cmac(&hex(KEY), &msg);
        assert_eq!(tag.to_vec(), hex("51f0bebf7e3b9d92fc49741779363cfe"));
    }

    #[test]
    fn deterministic_and_key_sensitive() {
        let a = aes_cmac(&[1u8; 32], b"same message");
        let b = aes_cmac(&[1u8; 32], b"same message");
        let c = aes_cmac(&[2u8; 32], b"same message");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn verify_roundtrip() {
        let cmac = Cmac::new(Aes::new_256(&[3u8; 32]));
        let tag = cmac.mac(b"payload");
        assert!(cmac.verify(b"payload", &tag));
        assert!(!cmac.verify(b"payloae", &tag));
    }
}
