//! Small-domain keyed PRF used as the grid hash `H`.
//!
//! Algorithm 1 maps the location domain onto `x` grid columns and the time
//! subintervals onto `y` grid rows "using a simple hash function" `H`. The
//! same `H` must be recomputable by the enclave during query execution
//! (Step 1 of the BPB method), so it is keyed with a sub-key derived from
//! the master secret rather than being a public hash — otherwise the
//! adversarial service provider could evaluate it on the attribute domain
//! and learn the grid layout.

use crate::hmac::hmac_sha256;

/// Keyed PRF mapping arbitrary byte strings into `[0, modulus)`.
#[derive(Clone)]
pub struct RangePrf {
    key: [u8; 32],
}

impl std::fmt::Debug for RangePrf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RangePrf").finish_non_exhaustive()
    }
}

impl RangePrf {
    /// Create a PRF instance from a 32-byte key.
    #[must_use]
    pub fn new(key: [u8; 32]) -> Self {
        RangePrf { key }
    }

    /// Evaluate the PRF on `input` and reduce into `[0, modulus)`.
    ///
    /// `modulus` must be non-zero. The reduction uses the top 128 bits of
    /// the HMAC output, so bias is negligible for any modulus that fits in
    /// a `u64` (the paper's grids have at most a few hundred thousand
    /// cells).
    #[must_use]
    pub fn eval_mod(&self, input: &[u8], modulus: u64) -> u64 {
        assert!(modulus > 0, "modulus must be non-zero");
        let tag = hmac_sha256(&self.key, input);
        let wide = u128::from_be_bytes(tag[..16].try_into().expect("16 bytes"));
        (wide % u128::from(modulus)) as u64
    }

    /// Evaluate the PRF on a `u64`-encoded value.
    #[must_use]
    pub fn eval_u64_mod(&self, value: u64, modulus: u64) -> u64 {
        self.eval_mod(&value.to_be_bytes(), modulus)
    }

    /// Raw 64-bit PRF output for `input` (no modular reduction).
    #[must_use]
    pub fn eval_u64(&self, input: &[u8]) -> u64 {
        let tag = hmac_sha256(&self.key, input);
        u64::from_be_bytes(tag[..8].try_into().expect("8 bytes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let prf = RangePrf::new([9u8; 32]);
        for v in 0..1000u64 {
            let a = prf.eval_u64_mod(v, 17);
            let b = prf.eval_u64_mod(v, 17);
            assert_eq!(a, b);
            assert!(a < 17);
        }
    }

    #[test]
    fn different_keys_differ() {
        let a = RangePrf::new([1u8; 32]);
        let b = RangePrf::new([2u8; 32]);
        let mismatches = (0..256u64)
            .filter(|v| a.eval_u64_mod(*v, 1 << 20) != b.eval_u64_mod(*v, 1 << 20))
            .count();
        assert!(mismatches > 250, "keys should produce different mappings");
    }

    #[test]
    fn roughly_uniform_over_small_range() {
        let prf = RangePrf::new([3u8; 32]);
        let modulus = 10u64;
        let mut counts = [0usize; 10];
        let n = 10_000u64;
        for v in 0..n {
            counts[prf.eval_u64_mod(v, modulus) as usize] += 1;
        }
        let expected = (n / modulus) as f64;
        for (bucket, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.15, "bucket {bucket} count {c} deviates too much");
        }
    }

    #[test]
    #[should_panic(expected = "modulus must be non-zero")]
    fn zero_modulus_panics() {
        let _ = RangePrf::new([0u8; 32]).eval_u64_mod(1, 0);
    }
}
