//! Deterministic authenticated encryption (the paper's `E_k`, DET).
//!
//! Concealer's Algorithm 1 requires an encryption function with two
//! properties:
//!
//! 1. **Determinism within an epoch** — the enclave must be able to
//!    regenerate exactly the same ciphertext as the data provider for a
//!    given `cid || counter` (to form trapdoors) or `location || time`
//!    (to form filters), using only the shared epoch key.
//! 2. **Ciphertext indistinguishability across tuples** — because every
//!    plaintext fed to `E_k` is concatenated with a timestamp (or a running
//!    counter), no two tuples ever encrypt the same plaintext, so the
//!    determinism never exposes equality of the underlying location /
//!    observation values.
//!
//! The construction here is an SIV-style deterministic AEAD:
//!
//! ```text
//! siv = CMAC(k_mac, plaintext)                 // synthetic IV, 16 bytes
//! ct  = CTR(k_enc, iv = siv, plaintext)
//! out = siv || ct
//! ```
//!
//! Decryption recomputes the CMAC over the recovered plaintext and checks it
//! against the transmitted SIV, giving integrity for free.
//!
//! For the *searchable* columns (the `Index` column and the filter columns)
//! the full ciphertext is used as an opaque, fixed-derivation byte string:
//! equality of trapdoor and stored value is what the DBMS index matches on.

use crate::aes::{Aes, BLOCK_SIZE};
use crate::cmac::Cmac;
use crate::{CryptoError, Result};

/// Length of the synthetic IV prepended to every DET ciphertext.
pub const SIV_SIZE: usize = BLOCK_SIZE;

/// Deterministic authenticated cipher (AES-CMAC-SIV).
#[derive(Clone)]
pub struct DeterministicCipher {
    cmac: Cmac,
    enc: Aes,
}

impl std::fmt::Debug for DeterministicCipher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeterministicCipher")
            .finish_non_exhaustive()
    }
}

impl DeterministicCipher {
    /// Build a deterministic cipher from independent MAC and encryption keys.
    #[must_use]
    pub fn new(mac_key: &[u8; 32], enc_key: &[u8; 32]) -> Self {
        DeterministicCipher {
            cmac: Cmac::new(Aes::new_256(mac_key)),
            enc: Aes::new_256(enc_key),
        }
    }

    /// Deterministically encrypt `plaintext`.
    ///
    /// Output layout: `siv (16) || ciphertext (len)`. Calling this twice
    /// with the same key and plaintext yields byte-identical output.
    #[must_use]
    pub fn encrypt(&self, plaintext: &[u8]) -> Vec<u8> {
        let siv = self.cmac.mac(plaintext);
        let mut out = Vec::with_capacity(SIV_SIZE + plaintext.len());
        out.extend_from_slice(&siv);
        out.extend_from_slice(plaintext);
        self.keystream_xor(&siv, &mut out[SIV_SIZE..]);
        out
    }

    /// Decrypt and authenticate a ciphertext produced by [`Self::encrypt`].
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>> {
        if ciphertext.len() < SIV_SIZE {
            return Err(CryptoError::MalformedCiphertext {
                reason: "shorter than synthetic IV",
            });
        }
        let (siv_bytes, body) = ciphertext.split_at(SIV_SIZE);
        let siv: [u8; SIV_SIZE] = siv_bytes.try_into().expect("checked length");
        let mut plaintext = body.to_vec();
        self.keystream_xor(&siv, &mut plaintext);
        let expected = self.cmac.mac(&plaintext);
        if !crate::ct_eq(&expected, &siv) {
            return Err(CryptoError::AuthenticationFailed);
        }
        Ok(plaintext)
    }

    /// Produce a *searchable token* for `plaintext`: the deterministic
    /// ciphertext itself. The enclave uses this to generate trapdoors that
    /// match the values the data provider stored in the indexed column.
    #[must_use]
    pub fn token(&self, plaintext: &[u8]) -> Vec<u8> {
        self.encrypt(plaintext)
    }

    fn keystream_xor(&self, iv: &[u8; SIV_SIZE], data: &mut [u8]) {
        let mut offset = 0usize;
        let mut counter: u64 = 0;
        while offset < data.len() {
            let mut block = *iv;
            // Mix the counter into the low 8 bytes of the IV copy.
            let low = u64::from_be_bytes(block[8..16].try_into().expect("8 bytes"));
            block[8..16].copy_from_slice(&low.wrapping_add(counter).to_be_bytes());
            self.enc.encrypt_block(&mut block);
            let take = BLOCK_SIZE.min(data.len() - offset);
            for i in 0..take {
                data[offset + i] ^= block[i];
            }
            offset += take;
            counter = counter.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cipher() -> DeterministicCipher {
        DeterministicCipher::new(&[1u8; 32], &[2u8; 32])
    }

    #[test]
    fn deterministic_for_identical_inputs() {
        let c = cipher();
        assert_eq!(c.encrypt(b"loc-17||t=100"), c.encrypt(b"loc-17||t=100"));
    }

    #[test]
    fn distinct_inputs_give_distinct_ciphertexts() {
        let c = cipher();
        assert_ne!(c.encrypt(b"loc-17||t=100"), c.encrypt(b"loc-17||t=101"));
        assert_ne!(c.encrypt(b"cid-4||1"), c.encrypt(b"cid-4||2"));
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let a = cipher();
        let b = DeterministicCipher::new(&[1u8; 32], &[3u8; 32]);
        let d = DeterministicCipher::new(&[4u8; 32], &[2u8; 32]);
        assert_ne!(a.encrypt(b"v"), b.encrypt(b"v"));
        assert_ne!(a.encrypt(b"v"), d.encrypt(b"v"));
    }

    #[test]
    fn roundtrip() {
        let c = cipher();
        for msg in [
            &b""[..],
            b"a",
            b"exactly sixteen!",
            b"a longer message spanning multiple aes blocks, yes indeed",
        ] {
            let ct = c.encrypt(msg);
            assert_eq!(c.decrypt(&ct).unwrap(), msg);
        }
    }

    #[test]
    fn tampering_detected() {
        let c = cipher();
        let mut ct = c.encrypt(b"the real tuple payload");
        ct[SIV_SIZE + 2] ^= 0xff;
        assert_eq!(c.decrypt(&ct), Err(CryptoError::AuthenticationFailed));
        let mut ct2 = c.encrypt(b"the real tuple payload");
        ct2[0] ^= 0x01; // corrupt the SIV
        assert_eq!(c.decrypt(&ct2), Err(CryptoError::AuthenticationFailed));
    }

    #[test]
    fn too_short_rejected() {
        let c = cipher();
        assert!(matches!(
            c.decrypt(&[0u8; 5]),
            Err(CryptoError::MalformedCiphertext { .. })
        ));
    }

    #[test]
    fn token_equals_encrypt() {
        let c = cipher();
        assert_eq!(c.token(b"cid7||3"), c.encrypt(b"cid7||3"));
    }

    proptest! {
        #[test]
        fn prop_roundtrip(msg in proptest::collection::vec(any::<u8>(), 0..512)) {
            let c = cipher();
            let ct = c.encrypt(&msg);
            prop_assert_eq!(c.decrypt(&ct).unwrap(), msg);
        }

        #[test]
        fn prop_deterministic(msg in proptest::collection::vec(any::<u8>(), 0..256)) {
            let c = cipher();
            prop_assert_eq!(c.encrypt(&msg), c.encrypt(&msg));
        }

        #[test]
        fn prop_distinct_messages_distinct_ciphertexts(
            a in proptest::collection::vec(any::<u8>(), 0..128),
            b in proptest::collection::vec(any::<u8>(), 0..128),
        ) {
            prop_assume!(a != b);
            let c = cipher();
            prop_assert_ne!(c.encrypt(&a), c.encrypt(&b));
        }
    }
}
