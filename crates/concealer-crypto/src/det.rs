//! Deterministic authenticated encryption (the paper's `E_k`, DET).
//!
//! Concealer's Algorithm 1 requires an encryption function with two
//! properties:
//!
//! 1. **Determinism within an epoch** — the enclave must be able to
//!    regenerate exactly the same ciphertext as the data provider for a
//!    given `cid || counter` (to form trapdoors) or `location || time`
//!    (to form filters), using only the shared epoch key.
//! 2. **Ciphertext indistinguishability across tuples** — because every
//!    plaintext fed to `E_k` is concatenated with a timestamp (or a running
//!    counter), no two tuples ever encrypt the same plaintext, so the
//!    determinism never exposes equality of the underlying location /
//!    observation values.
//!
//! The construction here is an SIV-style deterministic AEAD:
//!
//! ```text
//! siv = CMAC(k_mac, plaintext)                 // synthetic IV, 16 bytes
//! ct  = CTR(k_enc, iv = siv, plaintext)
//! out = siv || ct
//! ```
//!
//! Decryption recomputes the CMAC over the recovered plaintext and checks it
//! against the transmitted SIV, giving integrity for free.
//!
//! For the *searchable* columns (the `Index` column and the filter columns)
//! the full ciphertext is used as an opaque, fixed-derivation byte string:
//! equality of trapdoor and stored value is what the DBMS index matches on.

use crate::aes::{Aes, BLOCK_SIZE};
use crate::cmac::Cmac;
use crate::{CryptoError, Result};

/// Length of the synthetic IV prepended to every DET ciphertext.
pub const SIV_SIZE: usize = BLOCK_SIZE;

/// A reusable arena for batched DET operations over one bin.
///
/// All outputs of an [`DeterministicCipher::encrypt_batch`] /
/// [`DeterministicCipher::decrypt_batch`] call live in one contiguous
/// backing buffer instead of one heap allocation per row; per-item slices
/// are addressed through an index table. Reusing the arena across bins
/// (it is cleared, not shrunk, at the start of every batch call) makes the
/// steady-state fetch path allocation-free.
#[derive(Debug, Default, Clone)]
pub struct DetBuffer {
    data: Vec<u8>,
    /// `(offset, len)` into `data` per item; `None` marks an item whose
    /// decryption failed (authentication failure or malformed ciphertext).
    slots: Vec<Option<(usize, usize)>>,
}

impl DetBuffer {
    /// A fresh, empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An arena pre-sized for `items` outputs of roughly `bytes_per_item`
    /// bytes each.
    #[must_use]
    pub fn with_capacity(items: usize, bytes_per_item: usize) -> Self {
        DetBuffer {
            data: Vec::with_capacity(items * bytes_per_item),
            slots: Vec::with_capacity(items),
        }
    }

    /// Drop all items but keep the backing allocations.
    pub fn clear(&mut self) {
        self.data.clear();
        self.slots.clear();
    }

    /// Number of items (including failed decryptions) in the arena.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the arena holds no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The bytes of item `idx`, or `None` if the item failed to decrypt or
    /// `idx` is out of range.
    #[must_use]
    pub fn get(&self, idx: usize) -> Option<&[u8]> {
        let (off, len) = (*self.slots.get(idx)?)?;
        Some(&self.data[off..off + len])
    }

    /// Iterate over the items in insertion order (`None` for failures).
    pub fn iter(&self) -> impl Iterator<Item = Option<&[u8]>> {
        self.slots
            .iter()
            .map(|slot| slot.map(|(off, len)| &self.data[off..off + len]))
    }
}

/// Deterministic authenticated cipher (AES-CMAC-SIV).
#[derive(Clone)]
pub struct DeterministicCipher {
    cmac: Cmac,
    enc: Aes,
}

impl std::fmt::Debug for DeterministicCipher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeterministicCipher")
            .finish_non_exhaustive()
    }
}

impl DeterministicCipher {
    /// Build a deterministic cipher from independent MAC and encryption keys.
    #[must_use]
    pub fn new(mac_key: &[u8; 32], enc_key: &[u8; 32]) -> Self {
        DeterministicCipher {
            cmac: Cmac::new(Aes::new_256(mac_key)),
            enc: Aes::new_256(enc_key),
        }
    }

    /// Deterministically encrypt `plaintext`.
    ///
    /// Output layout: `siv (16) || ciphertext (len)`. Calling this twice
    /// with the same key and plaintext yields byte-identical output.
    #[must_use]
    pub fn encrypt(&self, plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(SIV_SIZE + plaintext.len());
        self.encrypt_into(plaintext, &mut out);
        out
    }

    /// Deterministically encrypt `plaintext`, appending `siv || ciphertext`
    /// to `out` instead of allocating. Byte-identical to [`Self::encrypt`].
    pub fn encrypt_into(&self, plaintext: &[u8], out: &mut Vec<u8>) {
        let siv = self.cmac.mac(plaintext);
        let start = out.len();
        out.extend_from_slice(&siv);
        out.extend_from_slice(plaintext);
        self.keystream_xor(&siv, &mut out[start + SIV_SIZE..]);
    }

    /// Decrypt and authenticate a ciphertext produced by [`Self::encrypt`].
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(ciphertext.len().saturating_sub(SIV_SIZE));
        self.decrypt_into(ciphertext, &mut out)?;
        Ok(out)
    }

    /// Decrypt and authenticate, appending the plaintext to `out` instead of
    /// allocating. On error `out` is left exactly as it was passed in.
    pub fn decrypt_into(&self, ciphertext: &[u8], out: &mut Vec<u8>) -> Result<()> {
        if ciphertext.len() < SIV_SIZE {
            return Err(CryptoError::MalformedCiphertext {
                reason: "shorter than synthetic IV",
            });
        }
        let (siv_bytes, body) = ciphertext.split_at(SIV_SIZE);
        let siv: [u8; SIV_SIZE] = siv_bytes.try_into().expect("checked length");
        let start = out.len();
        out.extend_from_slice(body);
        self.keystream_xor(&siv, &mut out[start..]);
        let expected = self.cmac.mac(&out[start..]);
        if !crate::ct_eq(&expected, &siv) {
            out.truncate(start);
            return Err(CryptoError::AuthenticationFailed);
        }
        Ok(())
    }

    /// Encrypt a whole bin of plaintexts into one arena: equivalent to
    /// calling [`Self::encrypt`] per item (byte-for-byte, in order) but with
    /// all outputs packed into `out`'s backing buffer. `out` is cleared
    /// first, so an arena can be reused across bins without reallocating.
    pub fn encrypt_batch<'a, I>(&self, plaintexts: I, out: &mut DetBuffer)
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        out.clear();
        for plaintext in plaintexts {
            let start = out.data.len();
            self.encrypt_into(plaintext, &mut out.data);
            out.slots.push(Some((start, out.data.len() - start)));
        }
    }

    /// Decrypt a whole bin of ciphertexts into one arena. Per-item results
    /// match [`Self::decrypt`] exactly: successfully authenticated
    /// plaintexts appear byte-for-byte at their item index, failures (of
    /// either kind) become `None` slots. Returns the number of failures.
    /// `out` is cleared first, so an arena can be reused across bins.
    pub fn decrypt_batch<'a, I>(&self, ciphertexts: I, out: &mut DetBuffer) -> usize
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        out.clear();
        let mut failures = 0usize;
        for ciphertext in ciphertexts {
            let start = out.data.len();
            match self.decrypt_into(ciphertext, &mut out.data) {
                Ok(()) => out.slots.push(Some((start, out.data.len() - start))),
                Err(_) => {
                    failures += 1;
                    out.slots.push(None);
                }
            }
        }
        failures
    }

    /// Produce a *searchable token* for `plaintext`: the deterministic
    /// ciphertext itself. The enclave uses this to generate trapdoors that
    /// match the values the data provider stored in the indexed column.
    #[must_use]
    pub fn token(&self, plaintext: &[u8]) -> Vec<u8> {
        self.encrypt(plaintext)
    }

    fn keystream_xor(&self, iv: &[u8; SIV_SIZE], data: &mut [u8]) {
        let mut offset = 0usize;
        let mut counter: u64 = 0;
        while offset < data.len() {
            let mut block = *iv;
            // Mix the counter into the low 8 bytes of the IV copy.
            let low = u64::from_be_bytes(block[8..16].try_into().expect("8 bytes"));
            block[8..16].copy_from_slice(&low.wrapping_add(counter).to_be_bytes());
            self.enc.encrypt_block(&mut block);
            let take = BLOCK_SIZE.min(data.len() - offset);
            for i in 0..take {
                data[offset + i] ^= block[i];
            }
            offset += take;
            counter = counter.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cipher() -> DeterministicCipher {
        DeterministicCipher::new(&[1u8; 32], &[2u8; 32])
    }

    #[test]
    fn deterministic_for_identical_inputs() {
        let c = cipher();
        assert_eq!(c.encrypt(b"loc-17||t=100"), c.encrypt(b"loc-17||t=100"));
    }

    #[test]
    fn distinct_inputs_give_distinct_ciphertexts() {
        let c = cipher();
        assert_ne!(c.encrypt(b"loc-17||t=100"), c.encrypt(b"loc-17||t=101"));
        assert_ne!(c.encrypt(b"cid-4||1"), c.encrypt(b"cid-4||2"));
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let a = cipher();
        let b = DeterministicCipher::new(&[1u8; 32], &[3u8; 32]);
        let d = DeterministicCipher::new(&[4u8; 32], &[2u8; 32]);
        assert_ne!(a.encrypt(b"v"), b.encrypt(b"v"));
        assert_ne!(a.encrypt(b"v"), d.encrypt(b"v"));
    }

    #[test]
    fn roundtrip() {
        let c = cipher();
        for msg in [
            &b""[..],
            b"a",
            b"exactly sixteen!",
            b"a longer message spanning multiple aes blocks, yes indeed",
        ] {
            let ct = c.encrypt(msg);
            assert_eq!(c.decrypt(&ct).unwrap(), msg);
        }
    }

    #[test]
    fn tampering_detected() {
        let c = cipher();
        let mut ct = c.encrypt(b"the real tuple payload");
        ct[SIV_SIZE + 2] ^= 0xff;
        assert_eq!(c.decrypt(&ct), Err(CryptoError::AuthenticationFailed));
        let mut ct2 = c.encrypt(b"the real tuple payload");
        ct2[0] ^= 0x01; // corrupt the SIV
        assert_eq!(c.decrypt(&ct2), Err(CryptoError::AuthenticationFailed));
    }

    #[test]
    fn too_short_rejected() {
        let c = cipher();
        assert!(matches!(
            c.decrypt(&[0u8; 5]),
            Err(CryptoError::MalformedCiphertext { .. })
        ));
    }

    #[test]
    fn token_equals_encrypt() {
        let c = cipher();
        assert_eq!(c.token(b"cid7||3"), c.encrypt(b"cid7||3"));
    }

    #[test]
    fn empty_batch_yields_empty_arena() {
        let c = cipher();
        let mut buf = DetBuffer::new();
        c.encrypt_batch(std::iter::empty(), &mut buf);
        assert!(buf.is_empty());
        assert_eq!(buf.len(), 0);
        assert_eq!(c.decrypt_batch(std::iter::empty(), &mut buf), 0);
        assert!(buf.is_empty());
        assert_eq!(buf.get(0), None);
    }

    #[test]
    fn single_row_batch_equals_per_row() {
        let c = cipher();
        let msg = b"one lonely tuple".as_slice();
        let mut buf = DetBuffer::new();
        c.encrypt_batch([msg], &mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.get(0).unwrap(), c.encrypt(msg).as_slice());
        let ct = c.encrypt(msg);
        let mut plain = DetBuffer::new();
        assert_eq!(c.decrypt_batch([ct.as_slice()], &mut plain), 0);
        assert_eq!(plain.get(0).unwrap(), msg);
    }

    #[test]
    fn decrypt_batch_marks_failures_without_poisoning_neighbors() {
        let c = cipher();
        let good = c.encrypt(b"survives");
        let mut tampered = c.encrypt(b"tampered row");
        tampered[SIV_SIZE + 1] ^= 0x80;
        let short = vec![0u8; 3];
        let mut buf = DetBuffer::new();
        let failures = c.decrypt_batch(
            [good.as_slice(), tampered.as_slice(), short.as_slice()],
            &mut buf,
        );
        assert_eq!(failures, 2);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.get(0).unwrap(), b"survives");
        assert_eq!(buf.get(1), None);
        assert_eq!(buf.get(2), None);
    }

    #[test]
    fn decrypt_into_failure_leaves_out_untouched() {
        let c = cipher();
        let mut out = b"prefix".to_vec();
        let mut ct = c.encrypt(b"payload");
        ct[0] ^= 1;
        assert_eq!(
            c.decrypt_into(&ct, &mut out),
            Err(CryptoError::AuthenticationFailed)
        );
        assert_eq!(out, b"prefix");
        c.decrypt_into(&c.encrypt(b"payload"), &mut out).unwrap();
        assert_eq!(out, b"prefixpayload");
    }

    proptest! {
        #[test]
        fn prop_roundtrip(msg in proptest::collection::vec(any::<u8>(), 0..512)) {
            let c = cipher();
            let ct = c.encrypt(&msg);
            prop_assert_eq!(c.decrypt(&ct).unwrap(), msg);
        }

        #[test]
        fn prop_deterministic(msg in proptest::collection::vec(any::<u8>(), 0..256)) {
            let c = cipher();
            prop_assert_eq!(c.encrypt(&msg), c.encrypt(&msg));
        }

        #[test]
        fn prop_distinct_messages_distinct_ciphertexts(
            a in proptest::collection::vec(any::<u8>(), 0..128),
            b in proptest::collection::vec(any::<u8>(), 0..128),
        ) {
            prop_assume!(a != b);
            let c = cipher();
            prop_assert_ne!(c.encrypt(&a), c.encrypt(&b));
        }

        /// Batched encryption over a bin equals the per-row calls
        /// byte-for-byte, including the empty-bin and single-row edges
        /// (the generator's length range covers both).
        #[test]
        fn prop_encrypt_batch_equals_per_row(
            bin in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..96), 0..24),
        ) {
            let c = cipher();
            let mut buf = DetBuffer::new();
            c.encrypt_batch(bin.iter().map(Vec::as_slice), &mut buf);
            prop_assert_eq!(buf.len(), bin.len());
            for (i, msg) in bin.iter().enumerate() {
                prop_assert_eq!(buf.get(i).unwrap(), c.encrypt(msg).as_slice());
            }
        }

        /// Batched decryption equals the per-row calls, item by item —
        /// successes byte-for-byte, failures in the same positions — even
        /// with tampered rows mixed in, and across arena reuse.
        #[test]
        fn prop_decrypt_batch_equals_per_row(
            bin in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..96), 0..24),
            tamper_mask in any::<u32>(),
        ) {
            let c = cipher();
            let cts: Vec<Vec<u8>> = bin
                .iter()
                .enumerate()
                .map(|(i, msg)| {
                    let mut ct = c.encrypt(msg);
                    if tamper_mask & (1 << (i % 32)) != 0 {
                        let idx = SIV_SIZE % ct.len();
                        ct[idx] ^= 0x55;
                    }
                    ct
                })
                .collect();
            let mut buf = DetBuffer::new();
            // Prime the arena with junk first: a reused arena must not leak
            // bytes from the previous batch into this one.
            c.encrypt_batch([b"junk from a previous bin".as_slice()], &mut buf);
            let failures = c.decrypt_batch(cts.iter().map(Vec::as_slice), &mut buf);
            prop_assert_eq!(buf.len(), cts.len());
            let mut expected_failures = 0usize;
            for (i, ct) in cts.iter().enumerate() {
                match c.decrypt(ct) {
                    Ok(plain) => prop_assert_eq!(buf.get(i).unwrap(), plain.as_slice()),
                    Err(_) => {
                        expected_failures += 1;
                        prop_assert_eq!(buf.get(i), None);
                    }
                }
            }
            prop_assert_eq!(failures, expected_failures);
        }
    }
}
