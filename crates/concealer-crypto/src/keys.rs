//! Key material shared between the data provider and the (simulated) enclave.
//!
//! The paper's trust model has a single secret `sk` negotiated between DP
//! and SGX; everything else (per-epoch keys, filter keys, grid-hash keys) is
//! derived from it. [`MasterKey`] is that secret; [`EpochKey`] bundles every
//! derived primitive an epoch needs, so both sides construct identical
//! ciphers from `(sk, eid, round_counter)`.

use crate::ctr::RandomizedCipher;
use crate::det::DeterministicCipher;
use crate::kdf::{derive_key, KeyPurpose};
use crate::prf::RangePrf;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Identifier of an epoch (the paper uses the epoch's start timestamp).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EpochId(pub u64);

impl EpochId {
    /// The raw epoch identifier.
    #[must_use]
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl From<u64> for EpochId {
    fn from(v: u64) -> Self {
        EpochId(v)
    }
}

/// The secret shared between the data provider and the enclave.
#[derive(Clone, PartialEq, Eq)]
pub struct MasterKey {
    sk: [u8; 32],
}

impl std::fmt::Debug for MasterKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MasterKey").finish_non_exhaustive()
    }
}

impl MasterKey {
    /// Wrap an existing 32-byte secret.
    #[must_use]
    pub fn from_bytes(sk: [u8; 32]) -> Self {
        MasterKey { sk }
    }

    /// Generate a fresh random master key.
    #[must_use]
    pub fn generate<R: RngCore>(rng: &mut R) -> Self {
        let mut sk = [0u8; 32];
        rng.fill_bytes(&mut sk);
        MasterKey { sk }
    }

    /// Derive the full set of per-epoch primitives.
    ///
    /// `round_counter` is 0 for freshly ingested epochs and is bumped by the
    /// dynamic-insertion protocol every time an epoch's bins are re-written
    /// (§6 of the paper), which is what gives forward privacy.
    #[must_use]
    pub fn epoch_key(&self, epoch: EpochId, round_counter: u64) -> EpochKey {
        let det_mac = derive_key(&self.sk, KeyPurpose::DetMac, epoch.0, round_counter);
        let det_enc = derive_key(&self.sk, KeyPurpose::DetEnc, epoch.0, round_counter);
        let rand_enc = derive_key(&self.sk, KeyPurpose::RandEnc, epoch.0, round_counter);
        let rand_mac = derive_key(&self.sk, KeyPurpose::RandMac, epoch.0, round_counter);
        let grid_hash = derive_key(&self.sk, KeyPurpose::GridHash, epoch.0, round_counter);
        let hash_chain = derive_key(&self.sk, KeyPurpose::HashChain, epoch.0, round_counter);
        let permutation = derive_key(&self.sk, KeyPurpose::Permutation, epoch.0, round_counter);
        EpochKey {
            epoch,
            round_counter,
            det: DeterministicCipher::new(&det_mac, &det_enc),
            rand: RandomizedCipher::new(&rand_enc, &rand_mac),
            grid_prf: RangePrf::new(grid_hash),
            hash_chain_key: hash_chain,
            permutation_key: permutation,
        }
    }

    /// The grid-hash PRF is intentionally *round-independent*: the enclave
    /// must map query predicates to grid cells the same way DP did at ingest
    /// time, regardless of how many times the epoch has since been
    /// re-encrypted.
    #[must_use]
    pub fn grid_prf(&self, epoch: EpochId) -> RangePrf {
        RangePrf::new(derive_key(&self.sk, KeyPurpose::GridHash, epoch.0, 0))
    }

    /// The per-epoch *seal secret* recorded (wrapped) in the durable
    /// store's key vault. It is derived from the same master the epoch's
    /// data keys come from, so a vault entry that unwraps to this value
    /// proves the epoch is readable under this master — without ever
    /// exposing the data keys to the rotation machinery.
    #[must_use]
    pub fn epoch_seal_secret(&self, epoch_id: u64) -> [u8; 32] {
        derive_key(&self.sk, KeyPurpose::EpochSeal, epoch_id, 0)
    }

    /// Wrap the epoch's seal secret under the key-encryption key of master
    /// `generation`, producing the 64-byte vault blob (32-byte XOR-pad
    /// ciphertext followed by a 32-byte HMAC tag binding the epoch id).
    #[must_use]
    pub fn wrap_epoch_seal(&self, generation: u64, epoch_id: u64) -> Vec<u8> {
        let kek = derive_key(&self.sk, KeyPurpose::KeyWrap, generation, 0);
        let seal = self.epoch_seal_secret(epoch_id);
        let pad = wrap_block(&kek, b"pad", epoch_id, &[]);
        let mut ct = [0u8; 32];
        for (c, (s, p)) in ct.iter_mut().zip(seal.iter().zip(pad.iter())) {
            *c = s ^ p;
        }
        let tag = wrap_block(&kek, b"tag", epoch_id, &ct);
        let mut blob = Vec::with_capacity(64);
        blob.extend_from_slice(&ct);
        blob.extend_from_slice(&tag);
        blob
    }

    /// Unwrap a vault blob written by [`MasterKey::wrap_epoch_seal`] under
    /// the same `(generation, epoch_id)`. Returns `None` when the blob is
    /// malformed, the tag does not verify, or the recovered secret does not
    /// match this master's [`MasterKey::epoch_seal_secret`] — i.e. exactly
    /// when the vault entry was *not* written under this master at that
    /// generation.
    #[must_use]
    pub fn unwrap_epoch_seal(
        &self,
        generation: u64,
        epoch_id: u64,
        blob: &[u8],
    ) -> Option<[u8; 32]> {
        if blob.len() != 64 {
            return None;
        }
        let (ct, tag) = blob.split_at(32);
        let kek = derive_key(&self.sk, KeyPurpose::KeyWrap, generation, 0);
        let expected_tag = wrap_block(&kek, b"tag", epoch_id, ct);
        if !crate::ct_eq(tag, &expected_tag) {
            return None;
        }
        let pad = wrap_block(&kek, b"pad", epoch_id, &[]);
        let mut seal = [0u8; 32];
        for (s, (c, p)) in seal.iter_mut().zip(ct.iter().zip(pad.iter())) {
            *s = c ^ p;
        }
        if !crate::ct_eq(&seal, &self.epoch_seal_secret(epoch_id)) {
            return None;
        }
        Some(seal)
    }
}

/// One HMAC block of the key-wrap construction: `HMAC(kek, label || epoch || data)`.
fn wrap_block(kek: &[u8; 32], label: &[u8], epoch_id: u64, data: &[u8]) -> [u8; 32] {
    let mut mac = crate::hmac::HmacSha256::new(kek);
    mac.update(label);
    mac.update(&epoch_id.to_le_bytes());
    mac.update(data);
    mac.finalize()
}

/// All primitives derived for one `(epoch, round_counter)` pair.
#[derive(Clone)]
pub struct EpochKey {
    /// Which epoch this key belongs to.
    pub epoch: EpochId,
    /// Re-encryption counter (0 = as ingested).
    pub round_counter: u64,
    /// Deterministic cipher for searchable columns (`E_k`).
    pub det: DeterministicCipher,
    /// Randomized cipher for metadata vectors and tags (`E^nd`).
    pub rand: RandomizedCipher,
    /// Grid-hash PRF (`H`) for cell allocation.
    pub grid_prf: RangePrf,
    /// Key for hash-chain tags.
    pub hash_chain_key: [u8; 32],
    /// Key for the pseudo-random transmission permutation.
    pub permutation_key: [u8; 32],
}

impl std::fmt::Debug for EpochKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochKey")
            .field("epoch", &self.epoch)
            .field("round_counter", &self.round_counter)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn same_inputs_same_epoch_key() {
        let mk = MasterKey::from_bytes([7u8; 32]);
        let a = mk.epoch_key(EpochId(10), 0);
        let b = mk.epoch_key(EpochId(10), 0);
        assert_eq!(a.det.encrypt(b"v"), b.det.encrypt(b"v"));
        assert_eq!(
            a.grid_prf.eval_u64_mod(3, 100),
            b.grid_prf.eval_u64_mod(3, 100)
        );
    }

    #[test]
    fn different_epochs_produce_unlinkable_ciphertexts() {
        let mk = MasterKey::from_bytes([7u8; 32]);
        let a = mk.epoch_key(EpochId(10), 0);
        let b = mk.epoch_key(EpochId(11), 0);
        assert_ne!(a.det.encrypt(b"loc1||t1"), b.det.encrypt(b"loc1||t1"));
    }

    #[test]
    fn round_counter_changes_det_but_not_grid_prf() {
        let mk = MasterKey::from_bytes([7u8; 32]);
        let r0 = mk.epoch_key(EpochId(10), 0);
        let r1 = mk.epoch_key(EpochId(10), 1);
        assert_ne!(r0.det.encrypt(b"v"), r1.det.encrypt(b"v"));
        // grid PRF from MasterKey::grid_prf is round independent
        let g = mk.grid_prf(EpochId(10));
        assert_eq!(g.eval_u64_mod(5, 99), r0.grid_prf.eval_u64_mod(5, 99));
    }

    #[test]
    fn generate_produces_distinct_keys() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = MasterKey::generate(&mut rng);
        let b = MasterKey::generate(&mut rng);
        assert_ne!(
            a.epoch_key(EpochId(1), 0).det.encrypt(b"x"),
            b.epoch_key(EpochId(1), 0).det.encrypt(b"x")
        );
    }

    #[test]
    fn wrap_unwrap_epoch_seal_round_trip() {
        let mk = MasterKey::from_bytes([7u8; 32]);
        let blob = mk.wrap_epoch_seal(2, 3600);
        assert_eq!(blob.len(), 64);
        assert_eq!(
            mk.unwrap_epoch_seal(2, 3600, &blob),
            Some(mk.epoch_seal_secret(3600))
        );
    }

    #[test]
    fn unwrap_rejects_wrong_master_generation_epoch_and_garbage() {
        let mk = MasterKey::from_bytes([7u8; 32]);
        let other = MasterKey::from_bytes([8u8; 32]);
        let blob = mk.wrap_epoch_seal(1, 0);
        assert!(other.unwrap_epoch_seal(1, 0, &blob).is_none());
        assert!(mk.unwrap_epoch_seal(2, 0, &blob).is_none());
        assert!(mk.unwrap_epoch_seal(1, 3600, &blob).is_none());
        assert!(mk.unwrap_epoch_seal(1, 0, &[0u8; 64]).is_none());
        assert!(mk.unwrap_epoch_seal(1, 0, b"short").is_none());
        // Flipping any ciphertext byte breaks the tag.
        let mut torn = blob.clone();
        torn[5] ^= 1;
        assert!(mk.unwrap_epoch_seal(1, 0, &torn).is_none());
    }

    #[test]
    fn generations_produce_distinct_blobs_for_one_epoch() {
        let mk = MasterKey::from_bytes([7u8; 32]);
        assert_ne!(mk.wrap_epoch_seal(0, 42), mk.wrap_epoch_seal(1, 42));
    }

    #[test]
    fn debug_does_not_leak() {
        let mk = MasterKey::from_bytes([0xAB; 32]);
        let s = format!("{mk:?}");
        assert!(!s.contains("171") && !s.to_lowercase().contains("ab, ab"));
    }
}
