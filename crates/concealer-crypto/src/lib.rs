//! Cryptographic substrate for the Concealer system.
//!
//! The Concealer paper (EDBT 2021) relies on a small set of symmetric
//! primitives: AES-256 for tuple encryption (both a *deterministic* mode,
//! used to build the DBMS-indexable `Index` column and the filter columns,
//! and a *non-deterministic* mode used for the metadata vectors), a
//! collision-resistant hash for the per-cell hash chains used for integrity
//! verification, and a keyed PRF for deriving per-epoch keys
//! (`k = PRF(sk, eid)`).
//!
//! None of the offline crates permitted for this reproduction provide these
//! primitives, so they are implemented here from scratch:
//!
//! * [`aes`] — AES-128/AES-256 block cipher (encrypt + decrypt).
//! * [`sha256`] — SHA-256 with a streaming [`sha256::Sha256`] hasher.
//! * [`hmac`] — HMAC-SHA-256.
//! * [`cmac`] — AES-CMAC (used as the deterministic PRF / synthetic IV).
//! * [`det`] — deterministic authenticated encryption (SIV-flavoured):
//!   identical plaintexts under the same key produce identical ciphertexts,
//!   which is exactly the property Algorithm 1 of the paper requires for the
//!   searchable `Index` and filter columns.
//! * [`ctr`] — randomized CTR-mode encryption for data that must *not* be
//!   searchable (the `cell_id[]` / `c_tuple[]` vectors, verifiable tags).
//! * [`kdf`] — epoch key derivation `k = HMAC(sk, eid || purpose)`.
//! * [`prf`] — small-domain PRF used by the grid hash `H` that maps
//!   locations / time subintervals to grid rows and columns.
//!
//! These implementations favour clarity and testability over raw speed; the
//! benchmarks in `concealer-bench` measure the whole pipeline, and the
//! relative shapes reported by the paper (index vs. full scan, oblivious vs.
//! plain) are insensitive to constant factors in the cipher itself.
//!
//! # Security disclaimer
//!
//! This code is a research reproduction. It has not been audited, makes no
//! claim of constant-time execution on real hardware, and must not be used
//! to protect real data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod cmac;
pub mod ctr;
pub mod det;
pub mod hmac;
pub mod kdf;
pub mod keys;
pub mod prf;
pub mod sha256;

mod error;

pub use det::{DetBuffer, DeterministicCipher};
pub use error::CryptoError;
pub use keys::{EpochId, EpochKey, MasterKey};

/// Convenience alias used across the workspace for fallible crypto calls.
pub type Result<T> = std::result::Result<T, CryptoError>;

/// Constant-time byte-slice equality.
///
/// Compares `a` and `b` without early exit so that the comparison time does
/// not depend on the position of the first mismatching byte. Used when
/// verifying MAC tags and hash-chain digests inside the (simulated) enclave.
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_equal_slices() {
        assert!(ct_eq(b"hello world", b"hello world"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn ct_eq_unequal_slices() {
        assert!(!ct_eq(b"hello world", b"hello worle"));
        assert!(!ct_eq(b"short", b"longer slice"));
        assert!(!ct_eq(b"a", b""));
    }

    #[test]
    fn ct_eq_differs_only_in_first_byte() {
        assert!(!ct_eq(b"xello", b"hello"));
    }
}
