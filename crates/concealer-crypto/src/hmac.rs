//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! Used by the key-derivation function ([`crate::kdf`]) that turns the
//! DP↔SGX shared secret `sk` plus an epoch id into the per-epoch key the
//! paper calls `k ← sk || eid`, and by the small-domain PRF behind the grid
//! hash `H`.

use crate::sha256::{Digest, Sha256, DIGEST_SIZE};

const BLOCK_SIZE: usize = 64;

/// Streaming HMAC-SHA-256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_key_pad: [u8; BLOCK_SIZE],
}

impl HmacSha256 {
    /// Create an HMAC instance keyed with `key` (any length).
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_SIZE];
        if key.len() > BLOCK_SIZE {
            let digest = crate::sha256::sha256(key);
            key_block[..DIGEST_SIZE].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0u8; BLOCK_SIZE];
        let mut opad = [0u8; BLOCK_SIZE];
        for i in 0..BLOCK_SIZE {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            outer_key_pad: opad,
        }
    }

    /// Absorb message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finish and return the 32-byte tag.
    #[must_use]
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key_pad);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA-256.
#[must_use]
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Verify a tag in constant time.
#[must_use]
pub fn verify_hmac_sha256(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
    crate::ct_eq(&hmac_sha256(key, message), tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_test_case_1() {
        let key = [0x0b_u8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_test_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_test_case_3() {
        let key = [0xaa_u8; 20];
        let msg = [0xdd_u8; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_long_key() {
        let key = [0xaa_u8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"key", b"msg");
        assert!(verify_hmac_sha256(b"key", b"msg", &tag));
        assert!(!verify_hmac_sha256(b"key", b"msg2", &tag));
        assert!(!verify_hmac_sha256(b"key2", b"msg", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!verify_hmac_sha256(b"key", b"msg", &bad));
    }

    #[test]
    fn streaming_equals_oneshot() {
        let mut mac = HmacSha256::new(b"k");
        mac.update(b"part one ");
        mac.update(b"part two");
        assert_eq!(mac.finalize(), hmac_sha256(b"k", b"part one part two"));
    }
}
