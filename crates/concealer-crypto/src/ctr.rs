//! Randomized AES-CTR encryption (the paper's `E^nd`, non-deterministic
//! encryption).
//!
//! The `cell_id[]` and `c_tuple[]` vectors, the verifiable tags, and the
//! fake-tuple payloads are encrypted with a *non-deterministic* scheme so
//! that the adversary cannot correlate them across epochs. This module
//! implements AES-CTR with a random 16-byte nonce prefixed to the
//! ciphertext, plus an HMAC-SHA-256 tag (encrypt-then-MAC) so that tampering
//! with the metadata vectors is detected just like tampering with tuples.

use crate::aes::{Aes, BLOCK_SIZE};
use crate::hmac::hmac_sha256;
use crate::{CryptoError, Result};
use rand::RngCore;

/// Length of the random nonce prefixed to each ciphertext.
pub const NONCE_SIZE: usize = 16;
/// Length of the authentication tag appended to each ciphertext.
pub const TAG_SIZE: usize = 32;

/// Randomized authenticated encryption: AES-CTR + HMAC-SHA-256
/// (encrypt-then-MAC).
#[derive(Clone)]
pub struct RandomizedCipher {
    enc: Aes,
    mac_key: [u8; 32],
}

impl RandomizedCipher {
    /// Build a cipher from independent encryption and MAC keys.
    #[must_use]
    pub fn new(enc_key: &[u8; 32], mac_key: &[u8; 32]) -> Self {
        RandomizedCipher {
            enc: Aes::new_256(enc_key),
            mac_key: *mac_key,
        }
    }

    /// Encrypt `plaintext` with a nonce drawn from `rng`.
    ///
    /// Output layout: `nonce (16) || ciphertext (len) || tag (32)`.
    #[must_use]
    pub fn encrypt<R: RngCore>(&self, rng: &mut R, plaintext: &[u8]) -> Vec<u8> {
        let mut nonce = [0u8; NONCE_SIZE];
        rng.fill_bytes(&mut nonce);
        self.encrypt_with_nonce(&nonce, plaintext)
    }

    /// Encrypt with an explicit nonce (exposed for tests; production callers
    /// should use [`RandomizedCipher::encrypt`]).
    #[must_use]
    pub fn encrypt_with_nonce(&self, nonce: &[u8; NONCE_SIZE], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(NONCE_SIZE + plaintext.len() + TAG_SIZE);
        out.extend_from_slice(nonce);
        out.extend_from_slice(plaintext);
        self.keystream_xor(nonce, &mut out[NONCE_SIZE..]);
        let tag = hmac_sha256(&self.mac_key, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Decrypt and verify a ciphertext produced by [`RandomizedCipher::encrypt`].
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>> {
        if ciphertext.len() < NONCE_SIZE + TAG_SIZE {
            return Err(CryptoError::MalformedCiphertext {
                reason: "shorter than nonce + tag",
            });
        }
        let (body, tag) = ciphertext.split_at(ciphertext.len() - TAG_SIZE);
        let expected = hmac_sha256(&self.mac_key, body);
        if !crate::ct_eq(&expected, tag) {
            return Err(CryptoError::AuthenticationFailed);
        }
        let nonce: [u8; NONCE_SIZE] = body[..NONCE_SIZE].try_into().expect("checked length");
        let mut plaintext = body[NONCE_SIZE..].to_vec();
        self.keystream_xor(&nonce, &mut plaintext);
        Ok(plaintext)
    }

    /// XOR `data` with the CTR keystream derived from `nonce`.
    fn keystream_xor(&self, nonce: &[u8; NONCE_SIZE], data: &mut [u8]) {
        let mut counter_block = *nonce;
        let mut offset = 0usize;
        let mut counter: u32 = 0;
        while offset < data.len() {
            // Counter occupies the last 4 bytes (big-endian), added to the nonce.
            let mut block = counter_block;
            let base = u32::from_be_bytes([block[12], block[13], block[14], block[15]]);
            let ctr = base.wrapping_add(counter);
            block[12..16].copy_from_slice(&ctr.to_be_bytes());
            self.enc.encrypt_block(&mut block);
            let take = BLOCK_SIZE.min(data.len() - offset);
            for i in 0..take {
                data[offset + i] ^= block[i];
            }
            offset += take;
            counter = counter.wrapping_add(1);
            // keep counter_block as the original nonce
            counter_block = *nonce;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cipher() -> RandomizedCipher {
        RandomizedCipher::new(&[11u8; 32], &[22u8; 32])
    }

    #[test]
    fn roundtrip_various_lengths() {
        let c = cipher();
        let mut rng = StdRng::seed_from_u64(1);
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 100, 1000] {
            let plaintext: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let ct = c.encrypt(&mut rng, &plaintext);
            assert_eq!(ct.len(), NONCE_SIZE + len + TAG_SIZE);
            assert_eq!(c.decrypt(&ct).unwrap(), plaintext, "len {len}");
        }
    }

    #[test]
    fn same_plaintext_different_ciphertexts() {
        let c = cipher();
        let mut rng = StdRng::seed_from_u64(2);
        let a = c.encrypt(&mut rng, b"identical plaintext");
        let b = c.encrypt(&mut rng, b"identical plaintext");
        assert_ne!(a, b, "randomized encryption must not be deterministic");
    }

    #[test]
    fn tampering_detected() {
        let c = cipher();
        let mut rng = StdRng::seed_from_u64(3);
        let mut ct = c.encrypt(&mut rng, b"important metadata");
        // Flip a ciphertext byte.
        let mid = NONCE_SIZE + 3;
        ct[mid] ^= 0x01;
        assert_eq!(c.decrypt(&ct), Err(CryptoError::AuthenticationFailed));
    }

    #[test]
    fn truncation_detected() {
        let c = cipher();
        let mut rng = StdRng::seed_from_u64(4);
        let ct = c.encrypt(&mut rng, b"important metadata");
        assert!(c.decrypt(&ct[..ct.len() - 1]).is_err());
        assert!(matches!(
            c.decrypt(&ct[..10]),
            Err(CryptoError::MalformedCiphertext { .. })
        ));
    }

    #[test]
    fn wrong_key_rejected() {
        let c = cipher();
        let other = RandomizedCipher::new(&[11u8; 32], &[23u8; 32]);
        let mut rng = StdRng::seed_from_u64(5);
        let ct = c.encrypt(&mut rng, b"data");
        assert_eq!(other.decrypt(&ct), Err(CryptoError::AuthenticationFailed));
    }

    #[test]
    fn explicit_nonce_is_deterministic_for_tests() {
        let c = cipher();
        let nonce = [7u8; NONCE_SIZE];
        let a = c.encrypt_with_nonce(&nonce, b"abc");
        let b = c.encrypt_with_nonce(&nonce, b"abc");
        assert_eq!(a, b);
    }
}
