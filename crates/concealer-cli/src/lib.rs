//! Shared flag parsing for the Concealer binaries (`concealer-server`,
//! `concealer-router`, `concealer-load`).
//!
//! Before this crate each binary carried its own hand-rolled `while`
//! loop over `std::env::args()`, and the three had already drifted on
//! details (error wording, `--flag=value` support). [`Args`] is the one
//! copy: a cursor over the argument list that understands both
//! `--flag value` and `--flag=value` spellings, parses typed values
//! with uniform diagnostics, and exits with the binary's usage string
//! on any misuse.
//!
//! Deliberately dependency-free — it is linked into every binary,
//! including the ones CI builds in seconds-matter loops.
//!
//! ```no_run
//! use concealer_cli::Args;
//!
//! let mut args = Args::new("demo", "demo [--port N] [--verbose]");
//! let mut port: u16 = 0;
//! let mut verbose = false;
//! while let Some(flag) = args.next_flag() {
//!     match flag.as_str() {
//!         "--port" => port = args.parse("--port"),
//!         "--verbose" => verbose = true,
//!         "--help" | "-h" => args.help(),
//!         other => args.unknown(other),
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A cursor over a binary's command-line flags.
///
/// Construct with [`Args::new`] (real processes) or [`Args::from_vec`]
/// (tests), then drive the loop with [`Args::next_flag`] and pull
/// values with [`Args::value`] / [`Args::parse`]. Every misuse path —
/// missing value, unparsable value, `=value` on a flag that takes none,
/// unknown flag — prints `program: message` plus the usage string to
/// stderr and exits with status 2, the conventional usage-error code.
#[derive(Debug)]
pub struct Args {
    program: &'static str,
    usage: &'static str,
    /// The `value` half of a `--flag=value` argument, held until the
    /// caller asks for it (or until the next flag proves the caller
    /// never would, which is a usage error).
    pending: Option<(String, String)>,
    iter: std::vec::IntoIter<String>,
}

impl Args {
    /// Wrap the process's real arguments (program name skipped).
    #[must_use]
    pub fn new(program: &'static str, usage: &'static str) -> Args {
        Args::from_vec(program, usage, std::env::args().skip(1).collect())
    }

    /// Wrap an explicit argument list (tests and embedding).
    #[must_use]
    pub fn from_vec(program: &'static str, usage: &'static str, argv: Vec<String>) -> Args {
        Args {
            program,
            usage,
            pending: None,
            iter: argv.into_iter(),
        }
    }

    /// Advance to the next flag. `--flag=value` is split: the flag name
    /// is returned and the value is held for the next [`Args::value`] /
    /// [`Args::parse`] call. Returns `None` when the arguments are
    /// exhausted.
    pub fn next_flag(&mut self) -> Option<String> {
        if let Some((flag, _)) = self.pending.take() {
            // The previous flag carried `=value` but its match arm never
            // asked for a value — a boolean flag given one.
            self.fail(&format!("{flag} does not take a value"));
        }
        let arg = self.iter.next()?;
        if let Some((flag, value)) = arg.split_once('=').filter(|_| arg.starts_with("--")) {
            let flag = flag.to_string();
            self.pending = Some((flag.clone(), value.to_string()));
            Some(flag)
        } else {
            Some(arg)
        }
    }

    /// The string value of `flag`: the `=value` half if the flag was
    /// spelled `--flag=value`, otherwise the next argument. Exits with
    /// a usage error if neither exists.
    pub fn value(&mut self, flag: &str) -> String {
        if let Some((_, value)) = self.pending.take() {
            return value;
        }
        match self.iter.next() {
            Some(value) => value,
            None => self.fail(&format!("{flag} needs a value")),
        }
    }

    /// [`Args::value`] parsed via [`std::str::FromStr`], exiting with a
    /// usage error naming the flag if parsing fails.
    pub fn parse<T: std::str::FromStr>(&mut self, flag: &str) -> T {
        let raw = self.value(flag);
        match raw.parse() {
            Ok(value) => value,
            Err(_) => self.fail(&format!("invalid value {raw:?} for {flag}")),
        }
    }

    /// [`Args::value`] run through a caller-supplied parser, exiting
    /// with the parser's message as a usage error on `Err`. For value
    /// grammars richer than `FromStr` (`--shard INDEX/TOTAL`,
    /// `--mode threaded|event`).
    pub fn parse_with<T>(
        &mut self,
        flag: &str,
        parser: impl FnOnce(&str) -> Result<T, String>,
    ) -> T {
        let raw = self.value(flag);
        match parser(&raw) {
            Ok(value) => value,
            Err(msg) => self.fail(&msg),
        }
    }

    /// Report a usage error: `program: message` plus the usage line on
    /// stderr, exit status 2.
    pub fn fail(&self, message: &str) -> ! {
        eprintln!("{}: {message}", self.program);
        eprintln!("usage: {}", self.usage);
        std::process::exit(2)
    }

    /// Report an unknown flag (the wildcard arm of the match loop).
    pub fn unknown(&self, flag: &str) -> ! {
        self.fail(&format!("unknown flag {flag}"))
    }

    /// Print the usage line on stdout and exit 0 (`--help`).
    pub fn help(&self) -> ! {
        println!("usage: {}", self.usage);
        std::process::exit(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(argv: &[&str]) -> Args {
        Args::from_vec(
            "test",
            "test [flags]",
            argv.iter().map(|s| s.to_string()).collect(),
        )
    }

    #[test]
    fn space_separated_values() {
        let mut a = args(&["--port", "7171", "--verbose"]);
        assert_eq!(a.next_flag().as_deref(), Some("--port"));
        assert_eq!(a.parse::<u16>("--port"), 7171);
        assert_eq!(a.next_flag().as_deref(), Some("--verbose"));
        assert_eq!(a.next_flag(), None);
    }

    #[test]
    fn equals_separated_values() {
        let mut a = args(&["--port=7171", "--store=/tmp/x"]);
        assert_eq!(a.next_flag().as_deref(), Some("--port"));
        assert_eq!(a.parse::<u16>("--port"), 7171);
        assert_eq!(a.next_flag().as_deref(), Some("--store"));
        assert_eq!(a.value("--store"), "/tmp/x");
        assert_eq!(a.next_flag(), None);
    }

    #[test]
    fn equals_value_may_itself_contain_equals() {
        let mut a = args(&["--opt=k=v"]);
        assert_eq!(a.next_flag().as_deref(), Some("--opt"));
        assert_eq!(a.value("--opt"), "k=v");
    }

    #[test]
    fn short_flags_are_not_split() {
        // Only `--long=value` splits; a bare value containing '=' (or a
        // short flag) passes through untouched.
        let mut a = args(&["-h"]);
        assert_eq!(a.next_flag().as_deref(), Some("-h"));
        assert_eq!(a.next_flag(), None);
    }

    #[test]
    fn parse_with_applies_custom_grammar() {
        let mut a = args(&["--shard=1/4"]);
        assert_eq!(a.next_flag().as_deref(), Some("--shard"));
        let shard = a.parse_with("--shard", |s| {
            s.split_once('/')
                .ok_or_else(|| "bad shard".to_string())
                .and_then(|(i, t)| {
                    Ok((
                        i.parse::<u32>().map_err(|_| "bad index".to_string())?,
                        t.parse::<u32>().map_err(|_| "bad total".to_string())?,
                    ))
                })
        });
        assert_eq!(shard, (1, 4));
    }
}
