//! Query workloads (Table 4 of the paper, plus the Exp 8 TPC-H
//! aggregations).
//!
//! The five WiFi query templates:
//!
//! * **Q1** — number of observations at location `l` during `[t1, tx]`.
//! * **Q2** — locations with the top-k observation counts during `[t1, tx]`.
//! * **Q3** — locations with at least `n` observations during `[t1, tx]`.
//! * **Q4** — locations where observation (device) `o` was seen during
//!   `[t1, tx]` (individualized).
//! * **Q5** — how often observation `o` was seen at location `l` during
//!   `[t1, tx]` (individualized).

use concealer_core::{Aggregate, Predicate, Query};
use rand::Rng;

/// Marker for query template Q1.
pub struct Q1;
/// Marker for query template Q2.
pub struct Q2;
/// Marker for query template Q3.
pub struct Q3;
/// Marker for query template Q4.
pub struct Q4;
/// Marker for query template Q5.
pub struct Q5;

/// Builds randomized instances of the paper's query templates.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    /// Number of distinct locations queries may reference.
    pub locations: u64,
    /// Device ids queries may reference.
    pub devices: Vec<u64>,
    /// Full time extent of the ingested data `[start, end)` in seconds.
    pub time_extent: (u64, u64),
}

impl QueryWorkload {
    /// Q1: count at a random location over a random window of
    /// `range_seconds`.
    pub fn q1<R: Rng>(&self, range_seconds: u64, rng: &mut R) -> Query {
        let (start, end) = self.random_window(range_seconds, rng);
        Query {
            aggregate: Aggregate::Count,
            predicate: Predicate::Range {
                dims: Some(vec![rng.gen_range(0..self.locations)]),
                observation: None,
                time_start: start,
                time_end: end,
            },
        }
    }

    /// A point-query variant of Q1 (Exp 2's point query): count at a random
    /// location at a single instant.
    pub fn q1_point<R: Rng>(&self, rng: &mut R) -> Query {
        let t = rng.gen_range(self.time_extent.0..self.time_extent.1);
        Query {
            aggregate: Aggregate::Count,
            predicate: Predicate::Point {
                dims: vec![rng.gen_range(0..self.locations)],
                time: t,
            },
        }
    }

    /// Q2: top-k locations over a random window.
    pub fn q2<R: Rng>(&self, range_seconds: u64, k: usize, rng: &mut R) -> Query {
        let (start, end) = self.random_window(range_seconds, rng);
        Query {
            aggregate: Aggregate::TopKLocations { k },
            predicate: Predicate::Range {
                dims: None,
                observation: None,
                time_start: start,
                time_end: end,
            },
        }
    }

    /// Q3: locations with at least `threshold` observations over a window.
    pub fn q3<R: Rng>(&self, range_seconds: u64, threshold: u64, rng: &mut R) -> Query {
        let (start, end) = self.random_window(range_seconds, rng);
        Query {
            aggregate: Aggregate::LocationsWithAtLeast { threshold },
            predicate: Predicate::Range {
                dims: None,
                observation: None,
                time_start: start,
                time_end: end,
            },
        }
    }

    /// Q4: which locations saw a given device over a window
    /// (individualized).
    pub fn q4<R: Rng>(&self, range_seconds: u64, rng: &mut R) -> Query {
        let (start, end) = self.random_window(range_seconds, rng);
        let device = self.random_device(rng);
        Query {
            aggregate: Aggregate::CollectRows,
            predicate: Predicate::Range {
                dims: None,
                observation: Some(device),
                time_start: start,
                time_end: end,
            },
        }
    }

    /// Q5: how many times a given device was seen at a given location over
    /// a window (individualized).
    pub fn q5<R: Rng>(&self, range_seconds: u64, rng: &mut R) -> Query {
        let (start, end) = self.random_window(range_seconds, rng);
        let device = self.random_device(rng);
        Query {
            aggregate: Aggregate::Count,
            predicate: Predicate::Range {
                dims: Some(vec![rng.gen_range(0..self.locations)]),
                observation: Some(device),
                time_start: start,
                time_end: end,
            },
        }
    }

    /// All five templates with the same range length, in order Q1..Q5
    /// (used by Exps 2, 3 and 10).
    pub fn all_range_queries<R: Rng>(
        &self,
        range_seconds: u64,
        rng: &mut R,
    ) -> Vec<(&'static str, Query)> {
        vec![
            ("Q1", self.q1(range_seconds, rng)),
            ("Q2", self.q2(range_seconds, 5, rng)),
            ("Q3", self.q3(range_seconds, 10, rng)),
            ("Q4", self.q4(range_seconds, rng)),
            ("Q5", self.q5(range_seconds, rng)),
        ]
    }

    /// TPC-H aggregation queries of Exp 8: count / sum / min / max over a
    /// random orderkey (and linenumber) point.
    pub fn tpch_query<R: Rng>(&self, dims: Vec<u64>, aggregate_name: &str, rng: &mut R) -> Query {
        let _ = rng;
        let aggregate = match aggregate_name {
            "count" => Aggregate::Count,
            "sum" => Aggregate::Sum { attr: 1 }, // extendedprice
            "min" => Aggregate::Min { attr: 1 },
            "max" => Aggregate::Max { attr: 1 },
            other => panic!("unknown TPC-H aggregate {other}"),
        };
        Query {
            aggregate,
            predicate: Predicate::Range {
                dims: Some(dims),
                observation: None,
                time_start: self.time_extent.0,
                time_end: self.time_extent.1.saturating_sub(1),
            },
        }
    }

    fn random_window<R: Rng>(&self, range_seconds: u64, rng: &mut R) -> (u64, u64) {
        // Windows are aligned to the filter-column time granularity (60 s in
        // every WiFi deployment in this repo): Concealer's count queries are
        // answered purely by granule-level string matching, so the query
        // semantics the paper evaluates are granule-aligned ranges.
        const GRANULE: u64 = 60;
        let (lo, hi) = self.time_extent;
        let extent = hi.saturating_sub(lo).max(1);
        let len = range_seconds
            .min(extent.saturating_sub(1))
            .max(1)
            .div_ceil(GRANULE)
            * GRANULE;
        let slack = extent.saturating_sub(len).max(1);
        let start = lo + (rng.gen_range(0..slack) / GRANULE) * GRANULE;
        (start, start + len - 1)
    }

    fn random_device<R: Rng>(&self, rng: &mut R) -> u64 {
        if self.devices.is_empty() {
            0
        } else {
            self.devices[rng.gen_range(0..self.devices.len())]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload() -> QueryWorkload {
        QueryWorkload {
            locations: 10,
            devices: vec![1001, 1002, 1003],
            time_extent: (0, 36_000),
        }
    }

    #[test]
    fn q1_shape() {
        let w = workload();
        let mut rng = StdRng::seed_from_u64(1);
        let q = w.q1(1200, &mut rng);
        assert_eq!(q.aggregate, Aggregate::Count);
        match q.predicate {
            Predicate::Range {
                dims: Some(d),
                observation: None,
                time_start,
                time_end,
            } => {
                assert_eq!(d.len(), 1);
                assert!(d[0] < 10);
                assert_eq!(time_end - time_start + 1, 1200);
                assert!(time_end < 36_000);
            }
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn q1_point_within_extent() {
        let w = workload();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let q = w.q1_point(&mut rng);
            match q.predicate {
                Predicate::Point { time, .. } => assert!(time < 36_000),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn q2_q3_unconstrained_dims() {
        let w = workload();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(matches!(
            w.q2(600, 3, &mut rng).predicate,
            Predicate::Range { dims: None, .. }
        ));
        assert!(matches!(
            w.q3(600, 5, &mut rng).aggregate,
            Aggregate::LocationsWithAtLeast { threshold: 5 }
        ));
    }

    #[test]
    fn q4_q5_are_individualized() {
        let w = workload();
        let mut rng = StdRng::seed_from_u64(4);
        let q4 = w.q4(600, &mut rng);
        assert!(q4.predicate.observation().is_some());
        let q5 = w.q5(600, &mut rng);
        assert!(q5.predicate.observation().is_some());
        assert!(q5.predicate.dims().is_some());
    }

    #[test]
    fn all_range_queries_labels() {
        let w = workload();
        let mut rng = StdRng::seed_from_u64(5);
        let queries = w.all_range_queries(1200, &mut rng);
        let labels: Vec<&str> = queries.iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, vec!["Q1", "Q2", "Q3", "Q4", "Q5"]);
    }

    #[test]
    fn tpch_aggregates() {
        let w = workload();
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(
            w.tpch_query(vec![1, 2], "count", &mut rng).aggregate,
            Aggregate::Count
        );
        assert_eq!(
            w.tpch_query(vec![1, 2], "sum", &mut rng).aggregate,
            Aggregate::Sum { attr: 1 }
        );
        assert_eq!(
            w.tpch_query(vec![1, 2], "min", &mut rng).aggregate,
            Aggregate::Min { attr: 1 }
        );
        assert_eq!(
            w.tpch_query(vec![1, 2], "max", &mut rng).aggregate,
            Aggregate::Max { attr: 1 }
        );
    }

    #[test]
    #[should_panic(expected = "unknown TPC-H aggregate")]
    fn tpch_unknown_aggregate_panics() {
        let w = workload();
        let mut rng = StdRng::seed_from_u64(7);
        let _ = w.tpch_query(vec![1], "median", &mut rng);
    }
}
