//! Workload generators for the Concealer evaluation.
//!
//! The paper evaluates on two datasets that cannot be redistributed:
//!
//! 1. the UCI campus WiFi connectivity dataset (136M rows over 202 days,
//!    2000+ access points, strongly diurnal), and
//! 2. the TPC-H `LineItem` table at 136M rows with two composite indexes.
//!
//! This crate provides synthetic generators that reproduce the structural
//! properties the evaluation depends on — row volume per hour, skew across
//! locations, diurnal peak/off-peak shape, domain sizes of the TPC-H
//! columns — plus the query workloads Q1–Q5 of Table 4 and the 2-D/4-D
//! TPC-H aggregations of Exp 8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod queries;
pub mod tpch;
pub mod wifi;

pub use queries::{QueryWorkload, Q1, Q2, Q3, Q4, Q5};
pub use tpch::{TpchConfig, TpchGenerator, TpchIndex};
pub use wifi::{WifiConfig, WifiGenerator};
