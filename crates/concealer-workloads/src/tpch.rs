//! Synthetic TPC-H `LineItem` workload (Dataset 2 of the paper).
//!
//! The paper selects nine `LineItem` columns — Orderkey, Partkey, Suppkey,
//! Linenumber, Quantity, Extendedprice, Discount, Tax, Returnflag — and
//! builds two Concealer deployments over them:
//!
//! * a **2-D index** over ⟨Orderkey, Linenumber⟩, and
//! * a **4-D index** over ⟨Orderkey, Partkey, Suppkey, Linenumber⟩.
//!
//! The remaining five columns travel in the encrypted payload. Since
//! `LineItem` has no time attribute, records get a synthetic monotonically
//! increasing timestamp (which is what makes deterministic ciphertexts of
//! repeated values distinct, exactly as the paper concatenates values with
//! a row-specific quantity).

use concealer_core::Record;
use rand::Rng;

/// Which of the paper's two composite indexes to generate records for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpchIndex {
    /// ⟨Orderkey, Linenumber⟩.
    TwoD,
    /// ⟨Orderkey, Partkey, Suppkey, Linenumber⟩.
    FourD,
}

impl TpchIndex {
    /// Number of indexed attributes.
    #[must_use]
    pub fn num_dims(self) -> usize {
        match self {
            TpchIndex::TwoD => 2,
            TpchIndex::FourD => 4,
        }
    }
}

/// Configuration for the synthetic LineItem generator.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// Number of rows to generate.
    pub rows: u64,
    /// Number of distinct orders (the paper's OK domain reaches 34M at
    /// 136M rows; scaled proportionally here).
    pub orders: u64,
    /// Number of distinct parts.
    pub parts: u64,
    /// Number of distinct suppliers.
    pub suppliers: u64,
    /// Which composite index layout to emit.
    pub index: TpchIndex,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            rows: 100_000,
            orders: 25_000,
            parts: 2_000,
            suppliers: 100,
            index: TpchIndex::TwoD,
        }
    }
}

impl TpchConfig {
    /// A small configuration for unit tests.
    #[must_use]
    pub fn tiny(index: TpchIndex) -> Self {
        TpchConfig {
            rows: 2_000,
            orders: 500,
            parts: 100,
            suppliers: 10,
            index,
        }
    }
}

/// One cleartext LineItem row (before conversion to a Concealer [`Record`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineItem {
    /// L_ORDERKEY.
    pub orderkey: u64,
    /// L_PARTKEY.
    pub partkey: u64,
    /// L_SUPPKEY.
    pub suppkey: u64,
    /// L_LINENUMBER (1–7, as in TPC-H).
    pub linenumber: u64,
    /// L_QUANTITY (1–50).
    pub quantity: u64,
    /// L_EXTENDEDPRICE in cents.
    pub extendedprice: u64,
    /// L_DISCOUNT in basis points (0–1000).
    pub discount: u64,
    /// L_TAX in basis points (0–800).
    pub tax: u64,
    /// L_RETURNFLAG encoded 0=A, 1=N, 2=R.
    pub returnflag: u64,
}

/// Generator producing LineItem rows / Concealer records.
#[derive(Debug, Clone)]
pub struct TpchGenerator {
    config: TpchConfig,
}

impl TpchGenerator {
    /// Build a generator.
    #[must_use]
    pub fn new(config: TpchConfig) -> Self {
        TpchGenerator { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &TpchConfig {
        &self.config
    }

    /// Generate the raw LineItem rows.
    pub fn generate_lineitems<R: Rng>(&self, rng: &mut R) -> Vec<LineItem> {
        let c = &self.config;
        (0..c.rows)
            .map(|i| {
                // Orders receive 1–7 line items; cycle through orders so
                // the orderkey domain is densely used like dbgen's.
                let orderkey = 1 + (i / 4) % c.orders;
                let linenumber = 1 + i % 7;
                let quantity = rng.gen_range(1..=50);
                let price_per_unit = rng.gen_range(90_000..=110_000);
                LineItem {
                    orderkey,
                    partkey: 1 + rng.gen_range(0..c.parts),
                    suppkey: 1 + rng.gen_range(0..c.suppliers),
                    linenumber,
                    quantity,
                    extendedprice: quantity * price_per_unit,
                    discount: rng.gen_range(0..=1_000),
                    tax: rng.gen_range(0..=800),
                    returnflag: rng.gen_range(0..3),
                }
            })
            .collect()
    }

    /// Convert LineItem rows into Concealer [`Record`]s for the configured
    /// index layout. The `i`-th record gets synthetic timestamp `i` so the
    /// whole table fits in a single epoch of duration ≥ `rows`.
    #[must_use]
    pub fn to_records(&self, items: &[LineItem]) -> Vec<Record> {
        items
            .iter()
            .enumerate()
            .map(|(i, li)| {
                let dims = match self.config.index {
                    TpchIndex::TwoD => vec![li.orderkey, li.linenumber],
                    TpchIndex::FourD => {
                        vec![li.orderkey, li.partkey, li.suppkey, li.linenumber]
                    }
                };
                // payload[0] plays the "observation" role; the remaining
                // non-indexed columns follow.
                let payload = match self.config.index {
                    TpchIndex::TwoD => vec![
                        li.quantity,
                        li.extendedprice,
                        li.discount,
                        li.tax,
                        li.returnflag,
                        li.partkey,
                        li.suppkey,
                    ],
                    TpchIndex::FourD => vec![
                        li.quantity,
                        li.extendedprice,
                        li.discount,
                        li.tax,
                        li.returnflag,
                    ],
                };
                Record {
                    dims,
                    time: i as u64,
                    payload,
                }
            })
            .collect()
    }

    /// Generate Concealer records directly.
    pub fn generate_records<R: Rng>(&self, rng: &mut R) -> Vec<Record> {
        let items = self.generate_lineitems(rng);
        self.to_records(&items)
    }

    /// An epoch duration sufficient to hold all generated records with
    /// their synthetic timestamps.
    #[must_use]
    pub fn epoch_duration(&self) -> u64 {
        self.config.rows.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lineitem_domains_respected() {
        let generator = TpchGenerator::new(TpchConfig::tiny(TpchIndex::TwoD));
        let mut rng = StdRng::seed_from_u64(1);
        let items = generator.generate_lineitems(&mut rng);
        assert_eq!(items.len(), 2000);
        for li in &items {
            assert!(li.orderkey >= 1 && li.orderkey <= 500);
            assert!(li.linenumber >= 1 && li.linenumber <= 7);
            assert!(li.quantity >= 1 && li.quantity <= 50);
            assert!(li.partkey >= 1 && li.partkey <= 100);
            assert!(li.suppkey >= 1 && li.suppkey <= 10);
            assert!(li.discount <= 1000);
            assert!(li.tax <= 800);
            assert!(li.returnflag < 3);
            assert_eq!(li.extendedprice % li.quantity, 0);
        }
    }

    #[test]
    fn two_d_records_shape() {
        let generator = TpchGenerator::new(TpchConfig::tiny(TpchIndex::TwoD));
        let mut rng = StdRng::seed_from_u64(2);
        let records = generator.generate_records(&mut rng);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.dims.len(), 2);
            assert_eq!(r.time, i as u64);
            assert_eq!(r.payload.len(), 7);
        }
    }

    #[test]
    fn four_d_records_shape() {
        let generator = TpchGenerator::new(TpchConfig::tiny(TpchIndex::FourD));
        let mut rng = StdRng::seed_from_u64(3);
        let records = generator.generate_records(&mut rng);
        for r in &records {
            assert_eq!(r.dims.len(), 4);
            assert_eq!(r.payload.len(), 5);
        }
        assert_eq!(TpchIndex::FourD.num_dims(), 4);
        assert_eq!(TpchIndex::TwoD.num_dims(), 2);
    }

    #[test]
    fn timestamps_fit_epoch_duration() {
        let generator = TpchGenerator::new(TpchConfig::tiny(TpchIndex::TwoD));
        let mut rng = StdRng::seed_from_u64(4);
        let records = generator.generate_records(&mut rng);
        let max_time = records.iter().map(|r| r.time).max().unwrap();
        assert!(max_time < generator.epoch_duration());
    }

    #[test]
    fn deterministic_given_seed() {
        let generator = TpchGenerator::new(TpchConfig::tiny(TpchIndex::FourD));
        let a = generator.generate_records(&mut StdRng::seed_from_u64(7));
        let b = generator.generate_records(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
