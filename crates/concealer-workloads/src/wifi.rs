//! Synthetic WiFi connectivity workload (Dataset 1 of the paper).
//!
//! Reproduced structural properties:
//!
//! * tuples of the form ⟨location (access point), time, observation
//!   (device id)⟩,
//! * a configurable number of access points (the paper manages 2000+),
//! * strong diurnal skew — the paper reports ≈6,000 rows/hour off-peak and
//!   ≈50,000 rows/hour at peak across all locations,
//! * Zipf-like popularity across access points (lecture halls vs. closets)
//!   and across devices.

use concealer_core::Record;
use rand::distributions::Distribution;
use rand::Rng;

/// Configuration for the synthetic WiFi generator.
#[derive(Debug, Clone)]
pub struct WifiConfig {
    /// Number of access points (locations).
    pub access_points: u64,
    /// Number of distinct devices.
    pub devices: u64,
    /// Average rows generated per peak hour (across all locations).
    pub peak_rows_per_hour: u64,
    /// Average rows generated per off-peak hour.
    pub offpeak_rows_per_hour: u64,
    /// Zipf skew exponent for access-point popularity (0 = uniform).
    pub location_skew: f64,
}

impl Default for WifiConfig {
    fn default() -> Self {
        WifiConfig {
            access_points: 200,
            devices: 2_000,
            peak_rows_per_hour: 5_000,
            offpeak_rows_per_hour: 600,
            location_skew: 0.8,
        }
    }
}

impl WifiConfig {
    /// A small configuration for unit tests.
    #[must_use]
    pub fn tiny() -> Self {
        WifiConfig {
            access_points: 16,
            devices: 50,
            peak_rows_per_hour: 400,
            offpeak_rows_per_hour: 80,
            location_skew: 0.8,
        }
    }
}

/// Generator producing epochs of WiFi connectivity records.
#[derive(Debug, Clone)]
pub struct WifiGenerator {
    config: WifiConfig,
    /// Cumulative popularity distribution over access points.
    location_cdf: Vec<f64>,
}

impl WifiGenerator {
    /// Build a generator.
    #[must_use]
    pub fn new(config: WifiConfig) -> Self {
        // Zipf-like weights: weight(i) = 1 / (i+1)^s, normalized into a CDF.
        let s = config.location_skew;
        let weights: Vec<f64> = (0..config.access_points)
            .map(|i| 1.0 / ((i + 1) as f64).powf(s))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let location_cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        WifiGenerator {
            config,
            location_cdf,
        }
    }

    /// The configuration this generator was built with.
    #[must_use]
    pub fn config(&self) -> &WifiConfig {
        &self.config
    }

    /// Whether an hour-of-day is a peak hour (8:00–19:59, campus shape).
    #[must_use]
    pub fn is_peak_hour(hour_of_day: u64) -> bool {
        (8..20).contains(&hour_of_day)
    }

    /// Expected rows for the hour starting at `hour_start` (seconds).
    #[must_use]
    pub fn rows_for_hour(&self, hour_start: u64) -> u64 {
        let hour_of_day = (hour_start / 3600) % 24;
        if Self::is_peak_hour(hour_of_day) {
            self.config.peak_rows_per_hour
        } else {
            self.config.offpeak_rows_per_hour
        }
    }

    /// Generate the records of one hour starting at `hour_start` seconds.
    pub fn generate_hour<R: Rng>(&self, hour_start: u64, rng: &mut R) -> Vec<Record> {
        let n = self.rows_for_hour(hour_start);
        // ±10% jitter so hours are not all identical.
        let jitter = (n / 10).max(1);
        let n = n - jitter / 2 + rng.gen_range(0..jitter);
        (0..n)
            .map(|_| {
                let location = self.sample_location(rng);
                let time = hour_start + rng.gen_range(0..3600);
                let device = self.sample_device(rng);
                Record::spatial(location, time, device)
            })
            .collect()
    }

    /// Generate the records of one epoch of `epoch_duration` seconds
    /// starting at `epoch_start`.
    pub fn generate_epoch<R: Rng>(
        &self,
        epoch_start: u64,
        epoch_duration: u64,
        rng: &mut R,
    ) -> Vec<Record> {
        let mut out = Vec::new();
        let mut t = epoch_start;
        while t < epoch_start + epoch_duration {
            let hour_len = 3600.min(epoch_start + epoch_duration - t);
            let mut hour = self.generate_hour(t, rng);
            // Clamp times into the epoch when the final slice is < 1 hour.
            for r in &mut hour {
                if r.time >= epoch_start + epoch_duration {
                    r.time = epoch_start + epoch_duration - 1;
                }
            }
            out.append(&mut hour);
            t += hour_len;
        }
        out
    }

    /// Generate several consecutive epochs; returns `(epoch_start, records)`
    /// pairs.
    pub fn generate_epochs<R: Rng>(
        &self,
        first_epoch_start: u64,
        epoch_duration: u64,
        num_epochs: usize,
        rng: &mut R,
    ) -> Vec<(u64, Vec<Record>)> {
        (0..num_epochs)
            .map(|i| {
                let start = first_epoch_start + i as u64 * epoch_duration;
                (start, self.generate_epoch(start, epoch_duration, rng))
            })
            .collect()
    }

    fn sample_location<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rand::distributions::Open01.sample(rng);
        match self
            .location_cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite"))
        {
            Ok(i) | Err(i) => (i as u64).min(self.config.access_points - 1),
        }
    }

    fn sample_device<R: Rng>(&self, rng: &mut R) -> u64 {
        // Devices follow a milder skew: square the uniform sample.
        let u: f64 = rng.gen();
        let idx = (u * u * self.config.devices as f64) as u64;
        1_000 + idx.min(self.config.devices - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    #[test]
    fn generates_requested_volume_shape() {
        let generator = WifiGenerator::new(WifiConfig::tiny());
        let mut rng = StdRng::seed_from_u64(1);
        // Peak hour: 12:00. Off-peak: 03:00.
        let peak = generator.generate_hour(12 * 3600, &mut rng);
        let off = generator.generate_hour(3 * 3600, &mut rng);
        assert!(
            peak.len() > 3 * off.len(),
            "peak {} off {}",
            peak.len(),
            off.len()
        );
    }

    #[test]
    fn records_are_well_formed() {
        let config = WifiConfig::tiny();
        let generator = WifiGenerator::new(config.clone());
        let mut rng = StdRng::seed_from_u64(2);
        let records = generator.generate_epoch(7200, 3600, &mut rng);
        assert!(!records.is_empty());
        for r in &records {
            assert_eq!(r.dims.len(), 1);
            assert!(r.dims[0] < config.access_points);
            assert!(r.time >= 7200 && r.time < 10800);
            assert!(r.payload[0] >= 1000);
            assert!(r.payload[0] < 1000 + config.devices);
        }
    }

    #[test]
    fn location_distribution_is_skewed() {
        let generator = WifiGenerator::new(WifiConfig::tiny());
        let mut rng = StdRng::seed_from_u64(3);
        let records = generator.generate_epoch(9 * 3600, 3600, &mut rng);
        let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
        for r in &records {
            *counts.entry(r.dims[0]).or_insert(0) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let min = counts.values().copied().min().unwrap_or(0);
        assert!(
            max >= 3 * min.max(1),
            "expected skew, got max={max} min={min}"
        );
    }

    #[test]
    fn epochs_are_consecutive_and_disjoint() {
        let generator = WifiGenerator::new(WifiConfig::tiny());
        let mut rng = StdRng::seed_from_u64(4);
        let epochs = generator.generate_epochs(0, 3600, 3, &mut rng);
        assert_eq!(epochs.len(), 3);
        for (i, (start, records)) in epochs.iter().enumerate() {
            assert_eq!(*start, i as u64 * 3600);
            for r in records {
                assert!(r.time >= *start && r.time < start + 3600);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let generator = WifiGenerator::new(WifiConfig::tiny());
        let a = generator.generate_epoch(0, 3600, &mut StdRng::seed_from_u64(9));
        let b = generator.generate_epoch(0, 3600, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn peak_hours_match_campus_shape() {
        assert!(!WifiGenerator::is_peak_hour(3));
        assert!(WifiGenerator::is_peak_hour(8));
        assert!(WifiGenerator::is_peak_hour(19));
        assert!(!WifiGenerator::is_peak_hour(20));
    }
}
