//! The data provider's encryption pipeline (Algorithm 1 of the paper).
//!
//! For every epoch, the data provider:
//!
//! 1. derives a fresh epoch key from the shared secret (`k ← sk || eid`),
//! 2. builds the grid over the indexed attributes and time, and assigns
//!    cell-ids to grid cells,
//! 3. encrypts every tuple: deterministic filter columns, a deterministic
//!    payload column and the `Index` column `E_k(cid || counter)`,
//! 4. generates fake tuples (either one per real tuple, or exactly as many
//!    as a simulated bin-packing run says are needed),
//! 5. optionally builds per-cell-id hash chains over the encrypted columns
//!    and encrypts the final digests as verifiable tags,
//! 6. pseudo-randomly permutes real and fake tuples together, and
//! 7. ships the permuted rows plus the encrypted `cell_id[]`, per-cell
//!    counts and `c_tuple[]` vectors and the tags to the service provider.

use concealer_crypto::{EpochId, MasterKey};
use concealer_storage::{EncryptedRow, EpochMetadata};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};

use crate::bins::{BinPlan, PackingAlgorithm};
use crate::codec;
use crate::config::{FakeTupleStrategy, SystemConfig};
use crate::grid::Grid;
use crate::types::{EpochWindow, Record};
use crate::verify::HashChainBuilder;
use crate::Result;

/// Summary statistics about one encrypted epoch (cleartext knowledge the
/// data provider is free to keep; never shipped to the service provider).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochStats {
    /// Real tuples encrypted.
    pub real_rows: usize,
    /// Fake tuples generated.
    pub fake_rows: usize,
    /// Number of grid cells.
    pub grid_cells: u64,
    /// Number of distinct cell-ids that actually received tuples.
    pub cell_ids_used: usize,
    /// The maximum number of tuples sharing one cell-id (the minimum viable
    /// BPB bin size).
    pub max_cell_id_load: u32,
}

/// Everything the data provider ships to the service provider for one epoch.
#[derive(Debug, Clone)]
pub struct EpochShipment {
    /// The epoch id (epoch start timestamp).
    pub epoch_id: u64,
    /// Permuted encrypted rows (real and fake tuples interleaved).
    pub rows: Vec<EncryptedRow>,
    /// Encrypted metadata vectors and verifiable tags.
    pub metadata: EpochMetadata,
    /// Cleartext statistics retained by the data provider (not shipped).
    pub stats: EpochStats,
}

/// The trusted data provider.
#[derive(Debug, Clone)]
pub struct DataProvider {
    master: MasterKey,
    config: SystemConfig,
}

impl DataProvider {
    /// Create a data provider that shares `master` with the enclave.
    #[must_use]
    pub fn new(master: MasterKey, config: SystemConfig) -> Self {
        DataProvider { master, config }
    }

    /// The shared secret (the data provider legitimately owns it).
    #[must_use]
    pub fn master(&self) -> &MasterKey {
        &self.master
    }

    /// The system configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Encrypt one epoch of records (Algorithm 1).
    ///
    /// `epoch_start` doubles as the epoch id. All record timestamps must lie
    /// in `[epoch_start, epoch_start + epoch_duration)`.
    pub fn encrypt_epoch<R: RngCore>(
        &self,
        epoch_start: u64,
        records: &[Record],
        rng: &mut R,
    ) -> Result<EpochShipment> {
        let window = EpochWindow {
            start: epoch_start,
            duration: self.config.epoch_duration,
        };
        let key = self.master.epoch_key(EpochId(epoch_start), 0);
        let grid = Grid::new(self.config.grid.clone(), window, key.grid_prf.clone());
        let cell_assignment = grid.cell_id_assignment();

        let num_cell_ids = self.config.grid.num_cell_ids as usize;
        let mut c_tuple = vec![0u32; num_cell_ids];
        let mut cell_counts = vec![0u32; grid.total_cells() as usize];

        // Encrypt real tuples (Lines 4-11 of Algorithm 1).
        let mut rows = Vec::with_capacity(records.len() * 2);
        let mut chain = HashChainBuilder::new(&key, num_cell_ids);
        for record in records {
            let coord = grid.locate(&record.dims, record.time)?;
            let cid = cell_assignment[coord.flat as usize];
            cell_counts[coord.flat as usize] += 1;
            c_tuple[cid as usize] += 1;
            let counter = c_tuple[cid as usize];

            let granule = record.time / self.config.time_granularity;
            let observation = record.observation().unwrap_or(0);

            let index_key = key.det.encrypt(&codec::index_real_plain(cid, counter));
            let filter_dims = key
                .det
                .encrypt(&codec::filter_dims_plain(&record.dims, granule));
            let filter_obs = key
                .det
                .encrypt(&codec::filter_obs_plain(observation, granule));
            let payload = key.det.encrypt(&codec::payload_plain(
                &record.dims,
                record.time,
                &record.payload,
            ));

            let row = EncryptedRow {
                index_key,
                filters: vec![filter_dims, filter_obs],
                payload,
            };
            if self.config.verify_integrity {
                chain.absorb(cid, &row);
            }
            rows.push(row);
        }
        let real_rows = rows.len();

        // Decide how many fake tuples to ship (Lines 12-15).
        let fake_rows = self.fake_tuple_budget(&c_tuple, real_rows);

        // Representative column widths so fake rows are indistinguishable
        // from real rows by length.
        let (filter_dims_len, filter_obs_len, payload_len) = if let Some(r) = rows.first() {
            (r.filters[0].len(), r.filters[1].len(), r.payload.len())
        } else {
            // Empty epoch: derive representative widths from a dummy record.
            let f = key.det.encrypt(&codec::filter_dims_plain(
                &vec![0; self.config.grid.num_dims()],
                0,
            ));
            let o = key.det.encrypt(&codec::filter_obs_plain(0, 0));
            let p = key.det.encrypt(&codec::payload_plain(
                &vec![0; self.config.grid.num_dims()],
                0,
                &[0],
            ));
            (f.len(), o.len(), p.len())
        };

        for j in 0..fake_rows as u64 {
            let index_key = key.det.encrypt(&codec::index_fake_plain(j));
            rows.push(EncryptedRow {
                index_key,
                filters: vec![
                    random_ciphertext(&key, rng, filter_dims_len),
                    random_ciphertext(&key, rng, filter_obs_len),
                ],
                payload: random_ciphertext(&key, rng, payload_len),
            });
        }

        // Verifiable tags (Lines 16-21), one per cell-id.
        let enc_tags = if self.config.verify_integrity {
            chain.finalize(rng)
        } else {
            Vec::new()
        };

        // Permute real and fake tuples together (Line 24). The permutation
        // is drawn from the epoch's permutation key so it is reproducible by
        // the data provider but unpredictable to the service provider.
        let mut perm_seed = [0u8; 32];
        perm_seed.copy_from_slice(&key.permutation_key);
        let mut perm_rng = StdRng::from_seed(perm_seed);
        rows.shuffle(&mut perm_rng);

        // Encrypt metadata vectors (Line 23): cell-id assignment and
        // per-cell counts travel in one blob, c_tuple[] in another.
        let mut assignment_and_counts = cell_assignment.clone();
        assignment_and_counts.extend_from_slice(&cell_counts);
        let enc_cell_id = key
            .rand
            .encrypt(rng, &codec::encode_u32_vector(&assignment_and_counts));
        let enc_c_tuple = key.rand.encrypt(rng, &codec::encode_u32_vector(&c_tuple));

        let stats = EpochStats {
            real_rows,
            fake_rows,
            grid_cells: grid.total_cells(),
            cell_ids_used: c_tuple.iter().filter(|&&c| c > 0).count(),
            max_cell_id_load: c_tuple.iter().copied().max().unwrap_or(0),
        };

        Ok(EpochShipment {
            epoch_id: epoch_start,
            rows,
            metadata: EpochMetadata {
                enc_cell_id,
                enc_c_tuple,
                enc_tags,
                advertised_rows: real_rows + fake_rows,
            },
            stats,
        })
    }

    /// How many fake tuples to ship for this epoch, per the configured
    /// strategy. The simulate-bins strategy also covers the winSecRange
    /// interval plan so that the stricter range method never runs out of
    /// padding material.
    fn fake_tuple_budget(&self, c_tuple: &[u32], real_rows: usize) -> usize {
        match self.config.fake_strategy {
            FakeTupleStrategy::EqualRealFake => real_rows,
            FakeTupleStrategy::SimulateBins => {
                let bpb = BinPlan::build(c_tuple, PackingAlgorithm::FirstFitDecreasing, None)
                    .total_fake_tuples();
                let winsec = self.winsec_fake_need(c_tuple, real_rows);
                bpb.max(winsec) as usize
            }
        }
    }

    /// Upper bound on the fakes the winSecRange interval plan needs:
    /// intervals are padded to the largest interval's size.
    fn winsec_fake_need(&self, _c_tuple: &[u32], real_rows: usize) -> u64 {
        let rows_per_interval = self.config.winsec_rows_per_interval.max(1);
        let num_intervals = self
            .config
            .grid
            .time_subintervals
            .div_ceil(rows_per_interval)
            .max(1);
        // Worst case every tuple lands in one interval: the other intervals
        // each need max-interval-size fakes. Bounded by (k-1)/k * ... but we
        // take the simple conservative bound capped at real_rows, matching
        // Theorem 4.1's "at most n fakes" regime used in the evaluation.
        let avg = (real_rows as u64).div_ceil(num_intervals);
        (num_intervals - 1) * avg
    }
}

/// A fresh, unlinkable ciphertext of the requested length (fake-tuple column
/// filler). Random plaintext encrypted under the randomized cipher, then
/// truncated/padded to match real-column widths so fakes are
/// length-indistinguishable from real rows.
fn random_ciphertext<R: RngCore>(
    key: &concealer_crypto::EpochKey,
    rng: &mut R,
    len: usize,
) -> Vec<u8> {
    let mut plain = vec![0u8; len];
    rng.fill_bytes(&mut plain);
    let mut ct = key.rand.encrypt(rng, &plain);
    ct.resize(len, rng.gen());
    ct
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GridShape;

    fn provider(fake: FakeTupleStrategy) -> DataProvider {
        let config = SystemConfig {
            grid: GridShape {
                dim_buckets: vec![6],
                time_subintervals: 6,
                num_cell_ids: 12,
            },
            epoch_duration: 3600,
            time_granularity: 60,
            fake_strategy: fake,
            verify_integrity: true,
            oblivious: false,
            winsec_rows_per_interval: 2,
        };
        DataProvider::new(MasterKey::from_bytes([3u8; 32]), config)
    }

    fn sample_records(n: u64) -> Vec<Record> {
        (0..n)
            .map(|i| Record::spatial(i % 10, i * 36 % 3600, 100 + i % 4))
            .collect()
    }

    #[test]
    fn encrypt_epoch_produces_real_plus_fake_rows() {
        let dp = provider(FakeTupleStrategy::EqualRealFake);
        let mut rng = StdRng::seed_from_u64(1);
        let shipment = dp.encrypt_epoch(0, &sample_records(200), &mut rng).unwrap();
        assert_eq!(shipment.stats.real_rows, 200);
        assert_eq!(shipment.stats.fake_rows, 200);
        assert_eq!(shipment.rows.len(), 400);
        assert_eq!(shipment.metadata.advertised_rows, 400);
        assert!(!shipment.metadata.enc_tags.is_empty());
    }

    #[test]
    fn simulate_bins_ships_no_more_fakes_than_equal() {
        let mut rng = StdRng::seed_from_u64(2);
        let records = sample_records(300);
        let equal = provider(FakeTupleStrategy::EqualRealFake)
            .encrypt_epoch(0, &records, &mut rng)
            .unwrap();
        let sim = provider(FakeTupleStrategy::SimulateBins)
            .encrypt_epoch(0, &records, &mut rng)
            .unwrap();
        assert!(
            sim.stats.fake_rows <= equal.stats.fake_rows + equal.stats.max_cell_id_load as usize
        );
    }

    #[test]
    fn index_keys_are_unique() {
        let dp = provider(FakeTupleStrategy::EqualRealFake);
        let mut rng = StdRng::seed_from_u64(3);
        let shipment = dp.encrypt_epoch(0, &sample_records(150), &mut rng).unwrap();
        let keys: std::collections::BTreeSet<Vec<u8>> =
            shipment.rows.iter().map(|r| r.index_key.clone()).collect();
        assert_eq!(keys.len(), shipment.rows.len());
    }

    #[test]
    fn identical_values_get_distinct_ciphertexts() {
        // Two records at the same location with the same observation but
        // different times must not share filter / payload ciphertexts.
        let dp = provider(FakeTupleStrategy::EqualRealFake);
        let mut rng = StdRng::seed_from_u64(4);
        let records = vec![Record::spatial(1, 100, 7), Record::spatial(1, 200, 7)];
        let shipment = dp.encrypt_epoch(0, &records, &mut rng).unwrap();
        let real: Vec<&EncryptedRow> = shipment
            .rows
            .iter()
            .filter(|r| !r.index_key.is_empty())
            .collect();
        assert_eq!(real.len(), 4); // 2 real + 2 fake
        let payloads: std::collections::BTreeSet<&Vec<u8>> =
            shipment.rows.iter().map(|r| &r.payload).collect();
        assert_eq!(payloads.len(), shipment.rows.len());
    }

    #[test]
    fn same_epoch_same_key_reproducible_index() {
        // DP and the enclave must derive identical deterministic ciphertexts
        // for the same (cid, counter); spot-check via a fresh epoch key.
        let dp = provider(FakeTupleStrategy::EqualRealFake);
        let key = dp.master().epoch_key(EpochId(0), 0);
        let a = key.det.encrypt(&codec::index_real_plain(3, 1));
        let b = dp
            .master()
            .epoch_key(EpochId(0), 0)
            .det
            .encrypt(&codec::index_real_plain(3, 1));
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_out_of_epoch_records() {
        let dp = provider(FakeTupleStrategy::EqualRealFake);
        let mut rng = StdRng::seed_from_u64(5);
        let records = vec![Record::spatial(1, 10_000, 7)];
        assert!(matches!(
            dp.encrypt_epoch(0, &records, &mut rng),
            Err(crate::CoreError::TimeOutOfEpoch { .. })
        ));
    }

    #[test]
    fn empty_epoch_is_fine() {
        let dp = provider(FakeTupleStrategy::SimulateBins);
        let mut rng = StdRng::seed_from_u64(6);
        let shipment = dp.encrypt_epoch(0, &[], &mut rng).unwrap();
        assert_eq!(shipment.stats.real_rows, 0);
        assert_eq!(shipment.rows.len(), shipment.stats.fake_rows);
    }

    #[test]
    fn fake_columns_match_real_column_widths() {
        let dp = provider(FakeTupleStrategy::EqualRealFake);
        let mut rng = StdRng::seed_from_u64(7);
        let shipment = dp.encrypt_epoch(0, &sample_records(50), &mut rng).unwrap();
        let widths: std::collections::BTreeSet<(usize, usize, usize)> = shipment
            .rows
            .iter()
            .map(|r| (r.filters[0].len(), r.filters[1].len(), r.payload.len()))
            .collect();
        assert_eq!(
            widths.len(),
            1,
            "all rows must have identical column widths"
        );
    }

    #[test]
    fn verification_disabled_ships_no_tags() {
        let mut dp = provider(FakeTupleStrategy::EqualRealFake);
        dp.config.verify_integrity = false;
        let mut rng = StdRng::seed_from_u64(8);
        let shipment = dp.encrypt_epoch(0, &sample_records(20), &mut rng).unwrap();
        assert!(shipment.metadata.enc_tags.is_empty());
    }
}
