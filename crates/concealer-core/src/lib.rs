//! # Concealer
//!
//! A reproduction of *"Concealer: SGX-based Secure, Volume Hiding, and
//! Verifiable Processing of Spatial Time-Series Datasets"* (EDBT 2021).
//!
//! Concealer lets a trusted **data provider** outsource encrypted spatial
//! time-series data to an untrusted **service provider** that hosts a
//! trusted-execution enclave, such that:
//!
//! * the data is encrypted with a *deterministic* scheme that an ordinary
//!   DBMS B-tree index can serve (no custom index structures at the server),
//! * every query fetches a **fixed-size bin** of tuples, so the output size
//!   never leaks the data distribution (volume hiding),
//! * the enclave can optionally process fetched tuples **obliviously**
//!   ("Concealer+"), defending against SGX side channels,
//! * the data provider can attach hash-chain tags so the enclave can
//!   **verify** that the service provider did not tamper with the data,
//! * data arrives **dynamically** in epochs, with forward privacy across
//!   epochs.
//!
//! ## Quick start
//!
//! ```
//! use concealer_core::{
//!     ConcealerSystem, SystemConfig, GridShape, Record, Query, FakeTupleStrategy,
//! };
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let config = SystemConfig {
//!     grid: GridShape { dim_buckets: vec![8], time_subintervals: 4, num_cell_ids: 16 },
//!     epoch_duration: 3_600,
//!     time_granularity: 60,
//!     fake_strategy: FakeTupleStrategy::SimulateBins,
//!     verify_integrity: true,
//!     oblivious: false,
//!     winsec_rows_per_interval: 2,
//! };
//! let mut system = ConcealerSystem::new(config, &mut rng);
//! let user = system.register_user(7, vec![1000], true);
//!
//! // One epoch of data: (location, time, device-id) readings.
//! let records: Vec<Record> = (0..100)
//!     .map(|i| Record { dims: vec![i % 8], time: i * 36, payload: vec![1000 + (i % 5)] })
//!     .collect();
//! system.ingest_epoch(0, &records, &mut rng).unwrap();
//!
//! // Open a session and ask: "how many observations at location 3 during
//! // the first half hour?"
//! let session = system.session(&user);
//! let query = Query::count().at_dims([3]).between(0, 1_800);
//! let answer = session.execute(&query).unwrap();
//! println!("count = {:?}", answer.value);
//!
//! // Under the bin-granular BPB method, batches dedupe shared bin
//! // fetches across queries; `par_execute_batch` additionally spreads
//! // the fetch/aggregate stages across all cores with bit-identical
//! // answers and an unchanged adversary-observable trace.
//! use concealer_core::{ExecOptions, RangeMethod};
//! let batch_session = session.with_options(ExecOptions::with_method(RangeMethod::Bpb));
//! let queries = [
//!     Query::count().at_dims([3]).between(0, 1_800),
//!     Query::count().at_dims([5]).between(0, 3_599),
//! ];
//! let answers = batch_session.execute_batch(&queries);
//! assert!(answers.iter().all(Result::is_ok));
//! let parallel = batch_session.par_execute_batch(&queries);
//! assert_eq!(
//!     parallel.iter().flatten().collect::<Vec<_>>(),
//!     answers.iter().flatten().collect::<Vec<_>>(),
//! );
//! ```
//!
//! See `examples/` for complete applications (occupancy heat-maps, contact
//! tracing, TPC-H analytics) and `concealer-bench` for the harness that
//! regenerates every table and figure of the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod bin_cache;
pub mod bins;
pub mod codec;
pub mod config;
pub mod dynamic;
pub mod engine;
pub mod grid;
pub mod provider;
pub mod query;
pub mod superbin;
pub mod types;
pub mod verify;

mod error;

pub use api::{ExecOptions, IndexStats, SecureIndex, Session, SystemBuilder, BACKEND_ENV_VAR};
pub use bin_cache::BinCacheStats;
pub use bins::{Bin, BinPlan};
pub use config::{FakeTupleStrategy, GridShape, SystemConfig};
pub use engine::{
    merge_partials, ConcealerSystem, EpochPartial, PhaseBreakdown, PlanStats, QueryEngine,
    RangeMethod, UserHandle, WinSecStats,
};
pub use error::CoreError;
pub use grid::{CellCoord, Grid};
pub use provider::{DataProvider, EpochShipment};
pub use query::{Aggregate, Predicate, Query, QueryAnswer, QueryBuilder};
pub use superbin::SuperBinPlan;
pub use types::{EpochWindow, Record};

// Storage backends, re-exported so deployments can pick where sealed
// epochs live without depending on `concealer-storage` directly; the
// master key type, because reopening a durable backend requires passing
// the key the epochs were sealed under to [`SystemBuilder::master`].
pub use concealer_crypto::MasterKey;
pub use concealer_storage::{shard_of_epoch, DiskEpochStore, MemoryBackend, StorageBackend};

// User identity primitives, re-exported for the serving layer: a wire
// handshake presents `(UserId, Credential)` and the server reconstructs the
// [`UserHandle`] the enclave authenticates on every query.
pub use concealer_enclave::{Credential, EnclaveError, QueryScope, UserId};

/// Convenience alias for fallible Concealer calls.
pub type Result<T> = std::result::Result<T, CoreError>;
