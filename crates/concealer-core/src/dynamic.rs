//! Dynamic insertion and forward privacy (§6 of the paper).
//!
//! Data arrives in epochs (rounds). Queries that span several rounds would
//! let the adversary correlate bins across rounds (Example 6.1), so after a
//! multi-round query the enclave *re-encrypts* every tuple it fetched under
//! a fresh key (`k ← sk || eid || round_counter`), permutes them, and writes
//! them back — inspired by Path-ORAM's re-write step but without the
//! external tree, because the enclave keeps the tiny meta-index (the per-bin
//! round counters) inside the trusted region.
//!
//! This module implements the per-bin re-encryption: given the rows of a
//! fetched bin (encrypted under `old_key`), produce the replacement rows
//! (encrypted under `new_key`), shuffled so physical slots cannot be linked
//! to logical tuples, plus recomputed verifiable tags for the affected
//! cell-ids.

use std::collections::HashMap;

use concealer_crypto::EpochKey;
use concealer_storage::EncryptedRow;
use rand::seq::SliceRandom;
use rand::RngCore;

use crate::codec;
use crate::verify::HashChainBuilder;
use crate::{CoreError, Result};

/// The output of re-encrypting one fetched bin.
#[derive(Debug)]
pub struct ReencryptedBin {
    /// `(old Index value, replacement row)` pairs to hand to the storage
    /// layer. The replacement assignment is shuffled.
    pub replacements: Vec<(Vec<u8>, EncryptedRow)>,
    /// Recomputed verifiable tags for every cell-id whose tuples were
    /// touched: `(cell_id, encrypted tag)`.
    pub new_tags: Vec<(u32, Vec<u8>)>,
}

/// Re-encrypt the rows of a fetched bin from `old_key` to `new_key`.
///
/// Every row must have been encrypted under `old_key` (real tuples decrypt
/// and re-encrypt column by column; fake tuples get fresh random column
/// fillers but keep their logical fake id so future trapdoors still find
/// them). `bin_cell_ids` lists every cell-id belonging to the bin — tags
/// are refreshed for all of them, including cell-ids that currently hold no
/// tuples, so later verifications under the new round key still succeed.
pub fn reencrypt_bin<R: RngCore>(
    old_key: &EpochKey,
    new_key: &EpochKey,
    rows: &[EncryptedRow],
    bin_cell_ids: &[u32],
    num_cell_ids: usize,
    rng: &mut R,
) -> Result<ReencryptedBin> {
    // Decrypt / re-encrypt, remembering per-cell-id rows for tag rebuild.
    let mut new_rows: Vec<EncryptedRow> = Vec::with_capacity(rows.len());
    let mut per_cell: HashMap<u32, Vec<(u32, usize)>> = HashMap::new();

    for row in rows {
        let index_plain = old_key
            .det
            .decrypt(&row.index_key)
            .map_err(|_| CoreError::CorruptMetadata)?;
        let new_index = new_key.det.encrypt(&index_plain);

        let new_row = if let Some((cid, counter)) = codec::decode_index_plain(&index_plain) {
            // Real tuple: re-encrypt every column under the new key.
            let mut filters = Vec::with_capacity(row.filters.len());
            for f in &row.filters {
                let plain = old_key
                    .det
                    .decrypt(f)
                    .map_err(|_| CoreError::CorruptMetadata)?;
                filters.push(new_key.det.encrypt(&plain));
            }
            let payload_plain = old_key
                .det
                .decrypt(&row.payload)
                .map_err(|_| CoreError::CorruptMetadata)?;
            let payload = new_key.det.encrypt(&payload_plain);
            per_cell
                .entry(cid)
                .or_default()
                .push((counter, new_rows.len()));
            EncryptedRow {
                index_key: new_index,
                filters,
                payload,
            }
        } else {
            // Fake tuple: columns are random filler; refresh them so the
            // rewrite is unlinkable, preserving widths.
            let filters = row
                .filters
                .iter()
                .map(|f| {
                    let mut fresh = vec![0u8; f.len()];
                    rng.fill_bytes(&mut fresh);
                    fresh
                })
                .collect();
            let mut payload = vec![0u8; row.payload.len()];
            rng.fill_bytes(&mut payload);
            EncryptedRow {
                index_key: new_index,
                filters,
                payload,
            }
        };
        new_rows.push(new_row);
    }

    // Rebuild the hash chains for every cell-id of the bin under the new
    // key (cell-ids without tuples get the empty-chain tag).
    let mut chain = HashChainBuilder::new(new_key, num_cell_ids);
    let mut touched: Vec<u32> = bin_cell_ids.to_vec();
    touched.extend(per_cell.keys().copied());
    touched.sort_unstable();
    touched.dedup();
    for &cid in &touched {
        let mut entries = per_cell.remove(&cid).unwrap_or_default();
        entries.sort_unstable_by_key(|(counter, _)| *counter);
        for (_, row_idx) in entries {
            chain.absorb(cid, &new_rows[row_idx]);
        }
    }
    let all_tags = chain.finalize(rng);
    let new_tags: Vec<(u32, Vec<u8>)> = touched
        .iter()
        .map(|&cid| (cid, all_tags[cid as usize].clone()))
        .collect();

    // Shuffle which replacement row lands in which physical slot.
    let old_keys: Vec<Vec<u8>> = rows.iter().map(|r| r.index_key.clone()).collect();
    let mut shuffled = new_rows;
    shuffled.shuffle(rng);
    let replacements = old_keys.into_iter().zip(shuffled).collect();

    Ok(ReencryptedBin {
        replacements,
        new_tags,
    })
}

/// Number of additional random bins to fetch per round when a query spans
/// multiple rounds (`log |Bin|` in §6, at least 1).
#[must_use]
pub fn extra_bins_per_round(num_bins: usize) -> usize {
    if num_bins <= 1 {
        return 0;
    }
    (usize::BITS - (num_bins - 1).leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use concealer_crypto::{EpochId, MasterKey};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys() -> (EpochKey, EpochKey) {
        let mk = MasterKey::from_bytes([5u8; 32]);
        (mk.epoch_key(EpochId(10), 0), mk.epoch_key(EpochId(10), 1))
    }

    fn real_row(key: &EpochKey, cid: u32, counter: u32) -> EncryptedRow {
        EncryptedRow {
            index_key: key.det.encrypt(&codec::index_real_plain(cid, counter)),
            filters: vec![
                key.det.encrypt(&codec::filter_dims_plain(&[7], 3)),
                key.det.encrypt(&codec::filter_obs_plain(9, 3)),
            ],
            payload: key.det.encrypt(&codec::payload_plain(&[7], 200, &[9])),
        }
    }

    fn fake_row(key: &EpochKey, id: u64) -> EncryptedRow {
        EncryptedRow {
            index_key: key.det.encrypt(&codec::index_fake_plain(id)),
            filters: vec![vec![1u8; 41], vec![2u8; 33]],
            payload: vec![3u8; 61],
        }
    }

    #[test]
    fn reencrypted_rows_are_findable_under_new_key() {
        let (old, new) = keys();
        let mut rng = StdRng::seed_from_u64(1);
        let rows = vec![
            real_row(&old, 2, 1),
            real_row(&old, 2, 2),
            fake_row(&old, 0),
        ];
        let out = reencrypt_bin(&old, &new, &rows, &[2], 4, &mut rng).unwrap();
        assert_eq!(out.replacements.len(), 3);

        // Every replacement's index key decrypts under the *new* key to the
        // same logical plaintext set.
        let mut new_plains: Vec<Vec<u8>> = out
            .replacements
            .iter()
            .map(|(_, r)| new.det.decrypt(&r.index_key).unwrap())
            .collect();
        new_plains.sort();
        let mut expected = vec![
            codec::index_real_plain(2, 1),
            codec::index_real_plain(2, 2),
            codec::index_fake_plain(0),
        ];
        expected.sort();
        assert_eq!(new_plains, expected);

        // Old-key trapdoors no longer match any replacement.
        let old_trapdoor = old.det.encrypt(&codec::index_real_plain(2, 1));
        assert!(out
            .replacements
            .iter()
            .all(|(_, r)| r.index_key != old_trapdoor));
    }

    #[test]
    fn reencrypted_payload_content_is_preserved() {
        let (old, new) = keys();
        let mut rng = StdRng::seed_from_u64(2);
        let rows = vec![real_row(&old, 1, 1)];
        let out = reencrypt_bin(&old, &new, &rows, &[1], 2, &mut rng).unwrap();
        let (_, new_row) = &out.replacements[0];
        let plain = new.det.decrypt(&new_row.payload).unwrap();
        let (dims, time, payload) = codec::decode_payload_plain(&plain).unwrap();
        assert_eq!(dims, vec![7]);
        assert_eq!(time, 200);
        assert_eq!(payload, vec![9]);
    }

    #[test]
    fn new_tags_verify_under_new_key() {
        let (old, new) = keys();
        let mut rng = StdRng::seed_from_u64(3);
        let rows = vec![real_row(&old, 3, 1), real_row(&old, 3, 2)];
        let out = reencrypt_bin(&old, &new, &rows, &[3], 5, &mut rng).unwrap();
        assert_eq!(out.new_tags.len(), 1);
        let (cid, tag) = &out.new_tags[0];
        assert_eq!(*cid, 3);

        // Reconstruct the rows in counter order from the replacements and
        // verify the chain.
        let mut with_counters: Vec<(u32, &EncryptedRow)> = out
            .replacements
            .iter()
            .filter_map(|(_, r)| {
                let plain = new.det.decrypt(&r.index_key).ok()?;
                codec::decode_index_plain(&plain).map(|(_, ctr)| (ctr, r))
            })
            .collect();
        with_counters.sort_by_key(|(c, _)| *c);
        let ordered: Vec<&EncryptedRow> = with_counters.into_iter().map(|(_, r)| r).collect();
        assert!(crate::verify::verify_cell_chain(&new, 3, &ordered, tag).is_ok());
    }

    #[test]
    fn wrong_old_key_is_rejected() {
        let (old, new) = keys();
        let other = MasterKey::from_bytes([6u8; 32]).epoch_key(EpochId(10), 0);
        let mut rng = StdRng::seed_from_u64(4);
        let rows = vec![real_row(&old, 1, 1)];
        assert!(reencrypt_bin(&other, &new, &rows, &[1], 2, &mut rng).is_err());
    }

    #[test]
    fn extra_bins_logarithmic() {
        assert_eq!(extra_bins_per_round(0), 0);
        assert_eq!(extra_bins_per_round(1), 0);
        assert_eq!(extra_bins_per_round(2), 1);
        assert_eq!(extra_bins_per_round(8), 3);
        assert_eq!(extra_bins_per_round(9), 4);
        assert_eq!(extra_bins_per_round(1024), 10);
    }
}
