//! The per-epoch grid over indexed attributes and time (Algorithm 1,
//! Stage 1).
//!
//! Algorithm 1 maps each indexed attribute onto a fixed number of hash
//! buckets (the grid's columns) and partitions the epoch's time span into
//! `y` subintervals (the grid's rows). Every grid cell is then assigned one
//! of `u ≤ x·y` cell-ids. Both the data provider (at ingest time) and the
//! enclave (at query time) must perform exactly the same mapping, so the
//! grid is keyed by a PRF derived from the shared secret — the adversarial
//! service provider, which does not know the key, cannot evaluate the
//! mapping over the attribute domain.

use concealer_crypto::prf::RangePrf;

use crate::config::GridShape;
use crate::types::EpochWindow;
use crate::{CoreError, Result};

/// A located grid cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellCoord {
    /// Bucket index along each indexed attribute.
    pub dim_coords: Vec<u64>,
    /// Time-row index within the epoch.
    pub time_row: u64,
    /// Flattened cell index in `[0, shape.total_cells())`.
    pub flat: u64,
}

/// The per-epoch grid.
#[derive(Debug, Clone)]
pub struct Grid {
    shape: GridShape,
    window: EpochWindow,
    prf: RangePrf,
}

impl Grid {
    /// Build the grid for one epoch.
    #[must_use]
    pub fn new(shape: GridShape, window: EpochWindow, prf: RangePrf) -> Self {
        Grid { shape, window, prf }
    }

    /// The grid shape.
    #[must_use]
    pub fn shape(&self) -> &GridShape {
        &self.shape
    }

    /// The epoch window this grid covers.
    #[must_use]
    pub fn window(&self) -> EpochWindow {
        self.window
    }

    /// Bucket index of `value` along indexed attribute `dim_idx`.
    #[must_use]
    pub fn dim_coord(&self, dim_idx: usize, value: u64) -> u64 {
        let buckets = self.shape.dim_buckets[dim_idx];
        let mut input = Vec::with_capacity(10);
        input.push(b'd');
        input.push(dim_idx as u8);
        input.extend_from_slice(&value.to_be_bytes());
        self.prf.eval_mod(&input, buckets)
    }

    /// Time-row index for an absolute timestamp within the epoch window.
    pub fn time_row(&self, time: u64) -> Result<u64> {
        if !self.window.contains(time) {
            return Err(CoreError::TimeOutOfEpoch {
                time,
                epoch_start: self.window.start,
                epoch_end: self.window.end(),
            });
        }
        let offset = time - self.window.start;
        let per_row = (self.window.duration / self.shape.time_subintervals).max(1);
        Ok((offset / per_row).min(self.shape.time_subintervals - 1))
    }

    /// Flatten explicit dimension coordinates plus a time row.
    #[must_use]
    pub fn flat_index(&self, dim_coords: &[u64], time_row: u64) -> u64 {
        debug_assert_eq!(dim_coords.len(), self.shape.num_dims());
        let mut flat = 0u64;
        for (i, c) in dim_coords.iter().enumerate() {
            flat = flat * self.shape.dim_buckets[i] + c;
        }
        flat * self.shape.time_subintervals + time_row
    }

    /// Locate the grid cell for a record's indexed attribute values and
    /// timestamp.
    pub fn locate(&self, dims: &[u64], time: u64) -> Result<CellCoord> {
        if dims.len() != self.shape.num_dims() {
            return Err(CoreError::SchemaMismatch {
                expected: self.shape.num_dims(),
                got: dims.len(),
            });
        }
        let dim_coords: Vec<u64> = dims
            .iter()
            .enumerate()
            .map(|(i, v)| self.dim_coord(i, *v))
            .collect();
        let time_row = self.time_row(time)?;
        let flat = self.flat_index(&dim_coords, time_row);
        Ok(CellCoord {
            dim_coords,
            time_row,
            flat,
        })
    }

    /// The cell-id assigned to each grid cell, indexed by flat cell index.
    ///
    /// The assignment is PRF-derived so DP never needs to transmit how the
    /// assignment was drawn — but the *vector itself* is still shipped
    /// encrypted (Algorithm 1 line 23) because the enclave treats it as
    /// data, mirroring the paper's flow.
    #[must_use]
    pub fn cell_id_assignment(&self) -> Vec<u32> {
        let total = self.shape.total_cells();
        let u = u64::from(self.shape.num_cell_ids);
        let mut out = Vec::with_capacity(total as usize);
        for flat in 0..total {
            let mut input = Vec::with_capacity(9);
            input.push(b'c');
            input.extend_from_slice(&flat.to_be_bytes());
            out.push(self.prf.eval_mod(&input, u) as u32);
        }
        out
    }

    /// Time rows overlapped by the absolute inclusive range
    /// `[t_start, t_end]`, clamped to this epoch's window. Empty when the
    /// range misses the window entirely.
    #[must_use]
    pub fn time_rows_for_range(&self, t_start: u64, t_end: u64) -> Vec<u64> {
        if !self.window.overlaps(t_start, t_end) {
            return Vec::new();
        }
        let lo = t_start.max(self.window.start);
        let hi = t_end.min(self.window.end() - 1);
        let per_row = (self.window.duration / self.shape.time_subintervals).max(1);
        let first = ((lo - self.window.start) / per_row).min(self.shape.time_subintervals - 1);
        let last = ((hi - self.window.start) / per_row).min(self.shape.time_subintervals - 1);
        (first..=last).collect()
    }

    /// Flat cell indices for one set of dimension *values* across the given
    /// time rows.
    pub fn cells_for_dims(&self, dims: &[u64], time_rows: &[u64]) -> Result<Vec<u64>> {
        if dims.len() != self.shape.num_dims() {
            return Err(CoreError::SchemaMismatch {
                expected: self.shape.num_dims(),
                got: dims.len(),
            });
        }
        let dim_coords: Vec<u64> = dims
            .iter()
            .enumerate()
            .map(|(i, v)| self.dim_coord(i, *v))
            .collect();
        Ok(time_rows
            .iter()
            .map(|r| self.flat_index(&dim_coords, *r))
            .collect())
    }

    /// Flat cell indices for *every* combination of dimension buckets across
    /// the given time rows (used by all-locations queries such as Q2/Q3).
    #[must_use]
    pub fn cells_for_all_dims(&self, time_rows: &[u64]) -> Vec<u64> {
        let mut combos: Vec<Vec<u64>> = vec![Vec::new()];
        for &buckets in &self.shape.dim_buckets {
            let mut next = Vec::with_capacity(combos.len() * buckets as usize);
            for combo in &combos {
                for b in 0..buckets {
                    let mut c = combo.clone();
                    c.push(b);
                    next.push(c);
                }
            }
            combos = next;
        }
        let mut out = Vec::with_capacity(combos.len() * time_rows.len());
        for combo in &combos {
            for &r in time_rows {
                out.push(self.flat_index(combo, r));
            }
        }
        out
    }

    /// Number of grid cells.
    #[must_use]
    pub fn total_cells(&self) -> u64 {
        self.shape.total_cells()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concealer_crypto::{EpochId, MasterKey};

    fn grid() -> Grid {
        let shape = GridShape {
            dim_buckets: vec![4],
            time_subintervals: 6,
            num_cell_ids: 10,
        };
        let window = EpochWindow {
            start: 1000,
            duration: 600,
        };
        let prf = MasterKey::from_bytes([1u8; 32]).grid_prf(EpochId(1000));
        Grid::new(shape, window, prf)
    }

    #[test]
    fn locate_is_deterministic_and_in_range() {
        let g = grid();
        for loc in 0..50u64 {
            for t in [1000u64, 1100, 1599] {
                let a = g.locate(&[loc], t).unwrap();
                let b = g.locate(&[loc], t).unwrap();
                assert_eq!(a, b);
                assert!(a.flat < g.total_cells());
                assert!(a.dim_coords[0] < 4);
                assert!(a.time_row < 6);
            }
        }
    }

    #[test]
    fn locate_rejects_bad_schema_and_time() {
        let g = grid();
        assert!(matches!(
            g.locate(&[1, 2], 1000),
            Err(CoreError::SchemaMismatch {
                expected: 1,
                got: 2
            })
        ));
        assert!(matches!(
            g.locate(&[1], 999),
            Err(CoreError::TimeOutOfEpoch { .. })
        ));
        assert!(matches!(
            g.locate(&[1], 1600),
            Err(CoreError::TimeOutOfEpoch { .. })
        ));
    }

    #[test]
    fn time_rows_partition_the_epoch() {
        let g = grid();
        // 600s epoch, 6 rows => 100s per row.
        assert_eq!(g.time_row(1000).unwrap(), 0);
        assert_eq!(g.time_row(1099).unwrap(), 0);
        assert_eq!(g.time_row(1100).unwrap(), 1);
        assert_eq!(g.time_row(1599).unwrap(), 5);
    }

    #[test]
    fn cell_id_assignment_covers_and_bounds() {
        let g = grid();
        let assignment = g.cell_id_assignment();
        assert_eq!(assignment.len(), 24);
        assert!(assignment.iter().all(|&c| c < 10));
        // Deterministic.
        assert_eq!(assignment, g.cell_id_assignment());
    }

    #[test]
    fn time_rows_for_range_clamps() {
        let g = grid();
        assert_eq!(g.time_rows_for_range(0, 999), Vec::<u64>::new());
        assert_eq!(g.time_rows_for_range(1600, 2000), Vec::<u64>::new());
        assert_eq!(g.time_rows_for_range(1000, 1099), vec![0]);
        assert_eq!(g.time_rows_for_range(1050, 1250), vec![0, 1, 2]);
        assert_eq!(g.time_rows_for_range(0, 10_000), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn cells_for_dims_follow_time_rows() {
        let g = grid();
        let rows = vec![1, 2, 3];
        let cells = g.cells_for_dims(&[7], &rows).unwrap();
        assert_eq!(cells.len(), 3);
        // Consecutive time rows of the same dim bucket are consecutive flats.
        assert_eq!(cells[1], cells[0] + 1);
        assert_eq!(cells[2], cells[1] + 1);
        assert!(g.cells_for_dims(&[7, 8], &rows).is_err());
    }

    #[test]
    fn cells_for_all_dims_enumerates_product() {
        let g = grid();
        let cells = g.cells_for_all_dims(&[0, 1]);
        assert_eq!(cells.len(), 4 * 2);
        let unique: std::collections::BTreeSet<u64> = cells.iter().copied().collect();
        assert_eq!(unique.len(), 8, "all cells distinct");
    }

    #[test]
    fn different_epochs_map_differently() {
        let shape = GridShape {
            dim_buckets: vec![64],
            time_subintervals: 6,
            num_cell_ids: 10,
        };
        let window = EpochWindow {
            start: 0,
            duration: 600,
        };
        let mk = MasterKey::from_bytes([1u8; 32]);
        let g1 = Grid::new(shape.clone(), window, mk.grid_prf(EpochId(0)));
        let g2 = Grid::new(shape, window, mk.grid_prf(EpochId(600)));
        let moved = (0..200u64)
            .filter(|&v| g1.dim_coord(0, v) != g2.dim_coord(0, v))
            .count();
        assert!(moved > 100, "epoch keys must reshuffle the grid mapping");
    }
}
