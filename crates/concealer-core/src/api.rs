//! The unified query surface: [`ExecOptions`], [`Session`] handles and the
//! [`SecureIndex`] trait.
//!
//! Every executor in the workspace — [`ConcealerSystem`] and the three
//! baselines in `concealer-baselines` — answers the same [`Query`] model
//! behind the same normalized [`QueryAnswer`], so equivalence tests,
//! benchmarks and examples are written once against this module instead of
//! hand-rolling per-backend glue.
//!
//! The pieces:
//!
//! * [`ExecOptions`] — everything that tunes *how* a query executes (range
//!   method, super-bins, forward privacy, verification, obliviousness),
//!   the merge of the old `RangeOptions` with the per-deployment toggles.
//! * [`Session`] — a user's handle on a [`ConcealerSystem`]: it carries the
//!   authenticated [`UserHandle`] plus default `ExecOptions`, and exposes
//!   [`Session::execute`] (dispatching on the predicate, replacing the old
//!   `point_query`/`range_query` split) and [`Session::execute_batch`]
//!   (cross-query bin deduplication — see the engine docs).
//! * [`SystemBuilder`] — deployment construction: master key, engine seed
//!   and, most importantly, *where the sealed epochs live* via
//!   [`SystemBuilder::with_backend`] (in-memory by default, or the durable
//!   [`DiskEpochStore`]). Reopening a durable backend re-registers every
//!   committed epoch with the enclave engine.
//! * [`SecureIndex`] — the minimal executor interface (`ingest_epoch` /
//!   `execute` / `answer_stats`) every backend implements.

use std::sync::Arc;

use concealer_crypto::MasterKey;
use concealer_storage::{DiskEpochStore, EpochStore, StorageBackend};
use rand::{Rng, RngCore};

use crate::config::SystemConfig;
use crate::engine::{scope_for_query, ConcealerSystem, RangeMethod, UserHandle};
use crate::query::{Query, QueryAnswer};
use crate::types::Record;
use crate::{CoreError, Result};

/// Options controlling query execution (the merge of the old
/// `RangeOptions` with the verification and obliviousness toggles).
///
/// A [`Session`] carries one of these as its defaults; individual calls can
/// override them with [`Session::execute_with`].
///
/// Serializable so remote clients can carry execution options per request
/// (the serving layer caps `parallelism` server-side before dispatching).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ExecOptions {
    /// Which method range queries execute with (§4.2, §5.2, §5.3).
    /// Point queries always fetch their single bin and ignore this.
    pub method: RangeMethod,
    /// Whether to group bins into super-bins (§8) and fetch whole
    /// super-bins, defending against query-workload frequency attacks.
    pub use_superbins: bool,
    /// Number of super-bins (`f` in §8).
    pub num_super_bins: usize,
    /// Whether to run the §6 multi-round protocol: fetch extra random bins
    /// from every round the query spans and re-encrypt everything fetched.
    pub forward_private: bool,
    /// Whether to hash-chain-verify fetched bins. Effective only when the
    /// deployment shipped verification tags (`SystemConfig::verify_integrity`);
    /// setting it to `false` skips verification even when tags exist.
    pub verify: bool,
    /// Override the enclave's oblivious (Concealer+) mode for this
    /// execution: `None` inherits the deployment default.
    pub oblivious: Option<bool>,
    /// Worker threads for batch execution (`0` and `1` both mean
    /// sequential). Only dedup-eligible batches — bin-granular BPB without
    /// forward privacy — parallelize their fetch+verify and per-query
    /// aggregation stages; answers and the adversary-observable trace are
    /// bit-identical to sequential execution either way. Batches that fall
    /// back to per-query execution (eBPB, winSecRange, forward privacy)
    /// ignore this knob and stay fully sequential, because interleaving
    /// their fetches would observably reorder the access pattern the
    /// caller configured.
    pub parallelism: usize,
    /// Bins per worker task in the parallel fetch stage. `0` (the default)
    /// slices the batch's bin union evenly across the workers — one chunk
    /// per worker, minimal task-queue traffic. Smaller chunks trade queue
    /// overhead for better load balancing when per-bin fetch cost is
    /// skewed. Purely a scheduling knob: answers and the observable trace
    /// are identical at every chunk size. Defaults to `0` when absent from
    /// a serialized request.
    #[serde(default)]
    pub fetch_chunk: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            method: RangeMethod::default(),
            use_superbins: false,
            num_super_bins: 4,
            forward_private: false,
            verify: true,
            oblivious: None,
            parallelism: 1,
            fetch_chunk: 0,
        }
    }
}

impl ExecOptions {
    /// Options selecting a specific range method, otherwise default.
    #[must_use]
    pub fn with_method(method: RangeMethod) -> Self {
        ExecOptions {
            method,
            ..Self::default()
        }
    }

    /// Set the batch-execution worker-thread count (builder style).
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Set the parallel fetch-stage chunk size (builder style); `0` means
    /// one chunk per worker.
    #[must_use]
    pub fn with_fetch_chunk(mut self, fetch_chunk: usize) -> Self {
        self.fetch_chunk = fetch_chunk;
        self
    }
}

/// A user's authenticated handle on a [`ConcealerSystem`]: the single entry
/// point for executing queries.
///
/// ```
/// # use concealer_core::{ConcealerSystem, SystemConfig, Query, Record};
/// # use rand::SeedableRng;
/// # let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// # let mut system = ConcealerSystem::new(SystemConfig::small_test(), &mut rng);
/// # let user = system.register_user(7, vec![1000], true);
/// # let records: Vec<Record> = (0..50)
/// #     .map(|i| Record::spatial(i % 4, i * 60, 1000 + i % 3))
/// #     .collect();
/// # system.ingest_epoch(0, &records, &mut rng).unwrap();
/// let session = system.session(&user);
/// let answer = session
///     .execute(&Query::count().at_dims([3]).between(0, 1_799))
///     .unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct Session<'a> {
    system: &'a ConcealerSystem,
    user: UserHandle,
    options: ExecOptions,
}

impl<'a> Session<'a> {
    pub(crate) fn new(system: &'a ConcealerSystem, user: UserHandle) -> Self {
        Session {
            system,
            user,
            options: ExecOptions::default(),
        }
    }

    /// Replace the session's default execution options (builder style).
    #[must_use]
    pub fn with_options(mut self, options: ExecOptions) -> Self {
        self.options = options;
        self
    }

    /// The session's default execution options.
    #[must_use]
    pub fn options(&self) -> &ExecOptions {
        &self.options
    }

    /// The user this session executes as.
    #[must_use]
    pub fn user(&self) -> &UserHandle {
        &self.user
    }

    /// Execute one query with the session's default options, dispatching on
    /// the predicate (point fetches its bin; ranges run the configured
    /// range method).
    pub fn execute(&self, query: &Query) -> Result<QueryAnswer> {
        self.execute_with(query, self.options)
    }

    /// Execute one query with explicit options (overriding the session
    /// defaults for this call only).
    pub fn execute_with(&self, query: &Query, options: ExecOptions) -> Result<QueryAnswer> {
        self.system
            .engine()
            .execute(&self.user, query, options, scope_for_query(query))
    }

    /// Execute a batch of queries. Under the bin-granular BPB method
    /// (`ExecOptions::method = RangeMethod::Bpb`), `(epoch, bin)` fetches
    /// are deduplicated across the batch: each bin the batch needs is
    /// fetched — and hash-chain-verified — exactly once, then filtered and
    /// aggregated per query, with answers (including per-query fetch
    /// metadata) identical to sequential execution. Sessions configured
    /// with eBPB / winSecRange or forward privacy execute the batch
    /// sequentially instead, preserving their access-pattern profile
    /// exactly; see [`crate::engine::QueryEngine::execute_batch`] for the
    /// leakage argument.
    pub fn execute_batch(&self, queries: &[Query]) -> Vec<Result<QueryAnswer>> {
        self.system
            .engine()
            .execute_batch(&self.user, queries, self.options)
    }

    /// Execute one query over only the epochs this process holds,
    /// returning one [`crate::EpochPartial`] per touched epoch instead of
    /// a finished answer — the shard half of multi-node serving. Partials
    /// from every shard recombine through [`crate::merge_partials`] into
    /// the answer a single-process [`Session::execute_with`] would
    /// produce, bit for bit. An empty vector is not an error: the query's
    /// epochs may live on other shards.
    pub fn execute_partials(
        &self,
        query: &Query,
        options: ExecOptions,
    ) -> Result<Vec<crate::EpochPartial>> {
        self.system
            .engine()
            .execute_partials(&self.user, query, options, scope_for_query(query))
    }

    /// Partial-execution counterpart of [`Session::execute_batch`]: run a
    /// batch over only the epochs this process holds, with `(epoch, bin)`
    /// fetches deduplicated across the batch within the shard's slice.
    /// See [`crate::engine::QueryEngine::execute_batch_partials`].
    pub fn execute_batch_partials(
        &self,
        queries: &[Query],
    ) -> Vec<Result<Vec<crate::EpochPartial>>> {
        self.system
            .engine()
            .execute_batch_partials(&self.user, queries, self.options)
    }

    /// Execute a batch of queries on all available cores: [`Session::execute_batch`]
    /// with [`ExecOptions::parallelism`] set to
    /// [`std::thread::available_parallelism`].
    ///
    /// Parallelism changes **nothing observable**: per-query answers
    /// (including fetch metadata) are bit-identical to sequential
    /// execution, and the storage-level trace is merged back in
    /// deterministic bin order, so it equals the sequential trace exactly.
    /// Batches that are not dedup-eligible (eBPB, winSecRange, forward
    /// privacy) still run fully sequentially — their access-pattern
    /// profile is never reordered.
    pub fn par_execute_batch(&self, queries: &[Query]) -> Vec<Result<QueryAnswer>> {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let options = ExecOptions {
            parallelism: threads,
            ..self.options
        };
        self.system
            .engine()
            .execute_batch(&self.user, queries, options)
    }
}

/// Environment variable the test and bench harnesses use to select the
/// storage backend (`memory` — the default — or `disk`). Read by
/// [`SystemBuilder::backend_from_env`]; ordinary construction paths never
/// consult the environment.
pub const BACKEND_ENV_VAR: &str = "CONCEALER_TEST_BACKEND";

/// Deployment constructor: configuration plus the optional master key,
/// engine RNG seed and storage backend.
///
/// ```
/// use std::sync::Arc;
/// use concealer_core::{DiskEpochStore, Query, Record, SystemBuilder, SystemConfig};
/// use rand::SeedableRng;
///
/// # let root = std::env::temp_dir().join(format!("concealer-doc-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&root);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// // Place the sealed epochs on disk instead of in memory:
/// let backend = Arc::new(DiskEpochStore::open(&root)?);
/// let mut system = SystemBuilder::new(SystemConfig::small_test())
///     .with_backend(backend)
///     .build(&mut rng)?;
/// let user = system.register_user(7, vec![1000], true);
/// let records: Vec<Record> = (0..50)
///     .map(|i| Record::spatial(i % 4, i * 60, 1000 + i % 3))
///     .collect();
/// system.ingest_epoch(0, &records, &mut rng)?;
/// // ... the ingested epoch now survives a process restart: reopening the
/// // same root with the same master key serves it again.
/// # let _ = std::fs::remove_dir_all(&root);
/// # Ok::<(), concealer_core::CoreError>(())
/// ```
///
/// Durability does not change what the adversary may do — the backend is
/// the *untrusted* service provider's storage either way, and hash-chain
/// verification catches tampering identically. One restriction applies to
/// reopened deployments: the §6 forward-privacy round counters are
/// enclave-resident state, so epochs rewritten by forward-private queries
/// do not survive a restart of the enclave (re-ingest them instead).
#[derive(Debug)]
pub struct SystemBuilder {
    config: SystemConfig,
    master: Option<MasterKey>,
    engine_seed: Option<u64>,
    backend: Option<Arc<dyn StorageBackend>>,
}

impl SystemBuilder {
    /// Start a builder for the given deployment configuration.
    #[must_use]
    pub fn new(config: SystemConfig) -> Self {
        SystemBuilder {
            config,
            master: None,
            engine_seed: None,
            backend: None,
        }
    }

    /// Use an explicit master key (required to reopen a durable backend:
    /// the epochs on it are sealed under this key). Default: generated
    /// from the `build` RNG.
    #[must_use]
    pub fn master(mut self, master: MasterKey) -> Self {
        self.master = Some(master);
        self
    }

    /// Seed the engine's internal RNG (reproducible §6 extra-bin choices).
    /// Default: drawn from the `build` RNG.
    #[must_use]
    pub fn engine_seed(mut self, seed: u64) -> Self {
        self.engine_seed = Some(seed);
        self
    }

    /// Store sealed epochs on an explicit [`StorageBackend`] — e.g. a
    /// [`DiskEpochStore`] — instead of the default in-memory backend.
    /// Epochs already committed on the backend (a reopened durable store)
    /// are re-registered with the engine during [`SystemBuilder::build`].
    #[must_use]
    pub fn with_backend(mut self, backend: Arc<dyn StorageBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Honor the [`BACKEND_ENV_VAR`] harness hook: `disk` swaps in a
    /// [`DiskEpochStore`] rooted in a fresh scratch directory under the OS
    /// temp dir; unset, empty or `memory` leaves the builder unchanged.
    /// Any other value is an error — a typo must not silently run the
    /// matrix against the wrong backend.
    ///
    /// This is for test/bench harnesses (the CI backend matrix reruns the
    /// integration suites with `CONCEALER_TEST_BACKEND=disk`); production
    /// callers pick their backend explicitly via
    /// [`SystemBuilder::with_backend`].
    pub fn backend_from_env(self) -> Result<Self> {
        match std::env::var(BACKEND_ENV_VAR) {
            Err(_) => Ok(self),
            Ok(v) if v.is_empty() || v == "memory" => Ok(self),
            Ok(v) if v == "disk" => {
                // A scratch store: the directory is deleted when the last
                // handle drops, so matrix runs leave no residue in /tmp.
                let backend = DiskEpochStore::open_scratch(scratch_dir())?;
                Ok(self.with_backend(Arc::new(backend)))
            }
            Ok(v) => Err(CoreError::InvalidConfig {
                reason: format!("unknown {BACKEND_ENV_VAR} value {v:?} (expected memory or disk)"),
            }),
        }
    }

    /// Assemble the deployment. Fails when a pre-populated backend's
    /// epochs cannot be registered (metadata sealed under a different
    /// master key, or corrupt).
    pub fn build<R: RngCore>(self, rng: &mut R) -> Result<ConcealerSystem> {
        let master = self.master.unwrap_or_else(|| MasterKey::generate(rng));
        let engine_seed = self.engine_seed.unwrap_or_else(|| rng.gen());
        let store = match self.backend {
            Some(backend) => EpochStore::with_backend(backend),
            None => EpochStore::new(),
        };
        ConcealerSystem::assemble(self.config, master, engine_seed, store)
    }
}

/// A fresh, unique scratch directory for an env-selected disk backend.
fn scratch_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let nanos: u64 = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::from(d.subsec_nanos()));
    std::env::temp_dir().join(format!(
        "concealer-backend-{}-{}-{nanos}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
    ))
}

/// Descriptive statistics a [`SecureIndex`] backend reports about how it
/// answers queries — its cost/leakage profile plus storage totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexStats {
    /// Short backend identifier (`"concealer"`, `"cleartext"`, …).
    pub backend: &'static str,
    /// Epochs ingested so far.
    pub epochs: usize,
    /// Rows stored (for Concealer this includes volume-hiding fakes).
    pub rows_stored: usize,
    /// Whether per-query fetch volumes are independent of the data
    /// distribution.
    pub volume_hiding: bool,
    /// Whether fetched data is integrity-verified against provider tags.
    pub verifiable: bool,
    /// Whether every query scans the full store (Opaque-style baselines).
    pub full_scan_per_query: bool,
    /// Decrypted-bin cache statistics, for backends that keep one
    /// (Concealer's enclave-side cache); `None` for the baselines.
    pub bin_cache: Option<crate::BinCacheStats>,
}

/// The minimal interface every secure-index backend exposes: ingest epochs,
/// execute queries behind the normalized [`QueryAnswer`], and describe
/// itself. Implemented by [`ConcealerSystem`] and by all three baselines in
/// `concealer-baselines`, so equivalence tests and benchmarks can treat
/// backends uniformly.
pub trait SecureIndex {
    /// Encrypt (where applicable) and ingest one epoch of records.
    fn ingest_epoch(
        &mut self,
        epoch_start: u64,
        records: &[Record],
        rng: &mut dyn RngCore,
    ) -> Result<()>;

    /// Execute one query and return the normalized answer.
    fn execute(&self, query: &Query) -> Result<QueryAnswer>;

    /// The backend's execution profile and storage totals.
    fn answer_stats(&self) -> IndexStats;
}

impl SecureIndex for ConcealerSystem {
    /// Ingest via the data provider pipeline (Phase 1 of the paper).
    fn ingest_epoch(
        &mut self,
        epoch_start: u64,
        records: &[Record],
        mut rng: &mut dyn RngCore,
    ) -> Result<()> {
        // `&mut &mut dyn RngCore` is a sized `RngCore`, satisfying the
        // inherent method's generic bound.
        ConcealerSystem::ingest_epoch(self, epoch_start, records, &mut rng).map(|_| ())
    }

    /// Execute as the system's default user (the first registered user)
    /// with default [`ExecOptions`]. Use [`ConcealerSystem::session`] when
    /// a specific user or non-default options are needed.
    fn execute(&self, query: &Query) -> Result<QueryAnswer> {
        let user = self.default_user().ok_or(crate::CoreError::InvalidQuery {
            reason: "SecureIndex::execute needs a registered user; call register_user first",
        })?;
        self.session(user).execute(query)
    }

    fn answer_stats(&self) -> IndexStats {
        IndexStats {
            backend: "concealer",
            epochs: self.engine().registered_epochs().len(),
            rows_stored: self.store().total_rows(),
            volume_hiding: true,
            verifiable: self.engine().config().verify_integrity,
            full_scan_per_query: false,
            bin_cache: Some(self.engine().bin_cache_stats()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("concealer-api-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_records() -> Vec<Record> {
        (0..60)
            .map(|i| Record::spatial(i % 4, i * 55, 1000 + i % 3))
            .collect()
    }

    #[test]
    fn disk_backed_system_survives_drop_and_reopen() {
        let root = scratch("reopen");
        let master = MasterKey::from_bytes([3u8; 32]);
        let records = sample_records();
        let query = Query::count().at_dims([2]).between(0, 3_599);

        let expected = {
            let mut rng = StdRng::seed_from_u64(5);
            let mut system = SystemBuilder::new(SystemConfig::small_test())
                .master(master.clone())
                .with_backend(Arc::new(DiskEpochStore::open(&root).unwrap()))
                .build(&mut rng)
                .unwrap();
            let user = system.register_user(1, vec![], true);
            system.ingest_epoch(0, &records, &mut rng).unwrap();
            let answer = system.session(&user).execute(&query).unwrap();
            assert!(answer.verified);
            answer
        };

        // A new process: same root, same master, nothing re-ingested.
        let mut rng = StdRng::seed_from_u64(99);
        let mut system = SystemBuilder::new(SystemConfig::small_test())
            .master(master)
            .with_backend(Arc::new(DiskEpochStore::open(&root).unwrap()))
            .build(&mut rng)
            .unwrap();
        assert_eq!(system.store().backend_kind(), "disk");
        assert_eq!(system.engine().registered_epochs(), vec![0]);
        let user = system.register_user(1, vec![], true);
        let answer = system.session(&user).execute(&query).unwrap();
        assert_eq!(answer, expected);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn reopening_with_the_wrong_master_fails_registration() {
        let root = scratch("wrongmaster");
        {
            let mut rng = StdRng::seed_from_u64(6);
            let mut system = SystemBuilder::new(SystemConfig::small_test())
                .master(MasterKey::from_bytes([7u8; 32]))
                .with_backend(Arc::new(DiskEpochStore::open(&root).unwrap()))
                .build(&mut rng)
                .unwrap();
            system.register_user(1, vec![], true);
            system.ingest_epoch(0, &sample_records(), &mut rng).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(7);
        let err = SystemBuilder::new(SystemConfig::small_test())
            .master(MasterKey::from_bytes([8u8; 32]))
            .with_backend(Arc::new(DiskEpochStore::open(&root).unwrap()))
            .build(&mut rng)
            .unwrap_err();
        assert!(matches!(err, CoreError::CorruptMetadata));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn backend_env_hook_passthrough_when_unset() {
        // Env mutation is process-global, so this test only covers the
        // variable's current state: pass-through when unset/memory, a disk
        // backend when the matrix set `disk`.
        let builder = SystemBuilder::new(SystemConfig::small_test())
            .backend_from_env()
            .unwrap();
        match std::env::var(BACKEND_ENV_VAR).as_deref() {
            Ok("disk") => assert!(builder.backend.is_some()),
            _ => assert!(builder.backend.is_none()),
        }
    }

    #[test]
    fn reopening_a_forward_private_rewritten_epoch_fails_at_build() {
        let root = scratch("fwdpriv");
        let master = MasterKey::from_bytes([9u8; 32]);
        {
            let mut rng = StdRng::seed_from_u64(8);
            let mut system = SystemBuilder::new(SystemConfig::small_test())
                .master(master.clone())
                .with_backend(Arc::new(DiskEpochStore::open(&root).unwrap()))
                .build(&mut rng)
                .unwrap();
            let user = system.register_user(1, vec![], true);
            let later: Vec<Record> = sample_records()
                .into_iter()
                .map(|mut r| {
                    r.time += 3_600;
                    r
                })
                .collect();
            system.ingest_epoch(0, &sample_records(), &mut rng).unwrap();
            system.ingest_epoch(3_600, &later, &mut rng).unwrap();
            // A forward-private multi-epoch query triggers the §6 rewrite
            // protocol, bumping round keys the reopened enclave cannot know.
            let opts = ExecOptions {
                method: RangeMethod::Bpb,
                forward_private: true,
                ..ExecOptions::default()
            };
            let q = Query::count().at_dims([1]).between(0, 7_199);
            system
                .session(&user)
                .with_options(opts)
                .execute(&q)
                .unwrap();
            assert!(system.store().rewrite_count(0).unwrap() > 0);
        }
        // Build must refuse cleanly instead of serving round-0 trapdoors
        // against round-1 ciphertexts (a spurious integrity violation at
        // best, a wrong answer with verification off at worst).
        let mut rng = StdRng::seed_from_u64(9);
        let err = SystemBuilder::new(SystemConfig::small_test())
            .master(master)
            .with_backend(Arc::new(DiskEpochStore::open(&root).unwrap()))
            .build(&mut rng)
            .unwrap_err();
        assert!(
            matches!(err, CoreError::InvalidConfig { ref reason } if reason.contains("re-ingest")),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
