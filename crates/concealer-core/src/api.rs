//! The unified query surface: [`ExecOptions`], [`Session`] handles and the
//! [`SecureIndex`] trait.
//!
//! Every executor in the workspace — [`ConcealerSystem`] and the three
//! baselines in `concealer-baselines` — answers the same [`Query`] model
//! behind the same normalized [`QueryAnswer`], so equivalence tests,
//! benchmarks and examples are written once against this module instead of
//! hand-rolling per-backend glue.
//!
//! The three pieces:
//!
//! * [`ExecOptions`] — everything that tunes *how* a query executes (range
//!   method, super-bins, forward privacy, verification, obliviousness),
//!   the merge of the old `RangeOptions` with the per-deployment toggles.
//! * [`Session`] — a user's handle on a [`ConcealerSystem`]: it carries the
//!   authenticated [`UserHandle`] plus default `ExecOptions`, and exposes
//!   [`Session::execute`] (dispatching on the predicate, replacing the old
//!   `point_query`/`range_query` split) and [`Session::execute_batch`]
//!   (cross-query bin deduplication — see the engine docs).
//! * [`SecureIndex`] — the minimal executor interface (`ingest_epoch` /
//!   `execute` / `answer_stats`) every backend implements.

use rand::RngCore;

use crate::engine::{scope_for_query, ConcealerSystem, RangeMethod, UserHandle};
use crate::query::{Query, QueryAnswer};
use crate::types::Record;
use crate::Result;

/// Options controlling query execution (the merge of the old
/// `RangeOptions` with the verification and obliviousness toggles).
///
/// A [`Session`] carries one of these as its defaults; individual calls can
/// override them with [`Session::execute_with`].
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Which method range queries execute with (§4.2, §5.2, §5.3).
    /// Point queries always fetch their single bin and ignore this.
    pub method: RangeMethod,
    /// Whether to group bins into super-bins (§8) and fetch whole
    /// super-bins, defending against query-workload frequency attacks.
    pub use_superbins: bool,
    /// Number of super-bins (`f` in §8).
    pub num_super_bins: usize,
    /// Whether to run the §6 multi-round protocol: fetch extra random bins
    /// from every round the query spans and re-encrypt everything fetched.
    pub forward_private: bool,
    /// Whether to hash-chain-verify fetched bins. Effective only when the
    /// deployment shipped verification tags (`SystemConfig::verify_integrity`);
    /// setting it to `false` skips verification even when tags exist.
    pub verify: bool,
    /// Override the enclave's oblivious (Concealer+) mode for this
    /// execution: `None` inherits the deployment default.
    pub oblivious: Option<bool>,
    /// Worker threads for batch execution (`0` and `1` both mean
    /// sequential). Only dedup-eligible batches — bin-granular BPB without
    /// forward privacy — parallelize their fetch+verify and per-query
    /// aggregation stages; answers and the adversary-observable trace are
    /// bit-identical to sequential execution either way. Batches that fall
    /// back to per-query execution (eBPB, winSecRange, forward privacy)
    /// ignore this knob and stay fully sequential, because interleaving
    /// their fetches would observably reorder the access pattern the
    /// caller configured.
    pub parallelism: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            method: RangeMethod::default(),
            use_superbins: false,
            num_super_bins: 4,
            forward_private: false,
            verify: true,
            oblivious: None,
            parallelism: 1,
        }
    }
}

impl ExecOptions {
    /// Options selecting a specific range method, otherwise default.
    #[must_use]
    pub fn with_method(method: RangeMethod) -> Self {
        ExecOptions {
            method,
            ..Self::default()
        }
    }

    /// Set the batch-execution worker-thread count (builder style).
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }
}

/// A user's authenticated handle on a [`ConcealerSystem`]: the single entry
/// point for executing queries.
///
/// ```
/// # use concealer_core::{ConcealerSystem, SystemConfig, Query, Record};
/// # use rand::SeedableRng;
/// # let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// # let mut system = ConcealerSystem::new(SystemConfig::small_test(), &mut rng);
/// # let user = system.register_user(7, vec![1000], true);
/// # let records: Vec<Record> = (0..50)
/// #     .map(|i| Record::spatial(i % 4, i * 60, 1000 + i % 3))
/// #     .collect();
/// # system.ingest_epoch(0, &records, &mut rng).unwrap();
/// let session = system.session(&user);
/// let answer = session
///     .execute(&Query::count().at_dims([3]).between(0, 1_799))
///     .unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct Session<'a> {
    system: &'a ConcealerSystem,
    user: UserHandle,
    options: ExecOptions,
}

impl<'a> Session<'a> {
    pub(crate) fn new(system: &'a ConcealerSystem, user: UserHandle) -> Self {
        Session {
            system,
            user,
            options: ExecOptions::default(),
        }
    }

    /// Replace the session's default execution options (builder style).
    #[must_use]
    pub fn with_options(mut self, options: ExecOptions) -> Self {
        self.options = options;
        self
    }

    /// The session's default execution options.
    #[must_use]
    pub fn options(&self) -> &ExecOptions {
        &self.options
    }

    /// The user this session executes as.
    #[must_use]
    pub fn user(&self) -> &UserHandle {
        &self.user
    }

    /// Execute one query with the session's default options, dispatching on
    /// the predicate (point fetches its bin; ranges run the configured
    /// range method).
    pub fn execute(&self, query: &Query) -> Result<QueryAnswer> {
        self.execute_with(query, self.options)
    }

    /// Execute one query with explicit options (overriding the session
    /// defaults for this call only).
    pub fn execute_with(&self, query: &Query, options: ExecOptions) -> Result<QueryAnswer> {
        self.system
            .engine()
            .execute(&self.user, query, options, scope_for_query(query))
    }

    /// Execute a batch of queries. Under the bin-granular BPB method
    /// (`ExecOptions::method = RangeMethod::Bpb`), `(epoch, bin)` fetches
    /// are deduplicated across the batch: each bin the batch needs is
    /// fetched — and hash-chain-verified — exactly once, then filtered and
    /// aggregated per query, with answers (including per-query fetch
    /// metadata) identical to sequential execution. Sessions configured
    /// with eBPB / winSecRange or forward privacy execute the batch
    /// sequentially instead, preserving their access-pattern profile
    /// exactly; see [`crate::engine::QueryEngine::execute_batch`] for the
    /// leakage argument.
    pub fn execute_batch(&self, queries: &[Query]) -> Vec<Result<QueryAnswer>> {
        self.system
            .engine()
            .execute_batch(&self.user, queries, self.options)
    }

    /// Execute a batch of queries on all available cores: [`Session::execute_batch`]
    /// with [`ExecOptions::parallelism`] set to
    /// [`std::thread::available_parallelism`].
    ///
    /// Parallelism changes **nothing observable**: per-query answers
    /// (including fetch metadata) are bit-identical to sequential
    /// execution, and the storage-level trace is merged back in
    /// deterministic bin order, so it equals the sequential trace exactly.
    /// Batches that are not dedup-eligible (eBPB, winSecRange, forward
    /// privacy) still run fully sequentially — their access-pattern
    /// profile is never reordered.
    pub fn par_execute_batch(&self, queries: &[Query]) -> Vec<Result<QueryAnswer>> {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let options = ExecOptions {
            parallelism: threads,
            ..self.options
        };
        self.system
            .engine()
            .execute_batch(&self.user, queries, options)
    }
}

/// Descriptive statistics a [`SecureIndex`] backend reports about how it
/// answers queries — its cost/leakage profile plus storage totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexStats {
    /// Short backend identifier (`"concealer"`, `"cleartext"`, …).
    pub backend: &'static str,
    /// Epochs ingested so far.
    pub epochs: usize,
    /// Rows stored (for Concealer this includes volume-hiding fakes).
    pub rows_stored: usize,
    /// Whether per-query fetch volumes are independent of the data
    /// distribution.
    pub volume_hiding: bool,
    /// Whether fetched data is integrity-verified against provider tags.
    pub verifiable: bool,
    /// Whether every query scans the full store (Opaque-style baselines).
    pub full_scan_per_query: bool,
}

/// The minimal interface every secure-index backend exposes: ingest epochs,
/// execute queries behind the normalized [`QueryAnswer`], and describe
/// itself. Implemented by [`ConcealerSystem`] and by all three baselines in
/// `concealer-baselines`, so equivalence tests and benchmarks can treat
/// backends uniformly.
pub trait SecureIndex {
    /// Encrypt (where applicable) and ingest one epoch of records.
    fn ingest_epoch(
        &mut self,
        epoch_start: u64,
        records: &[Record],
        rng: &mut dyn RngCore,
    ) -> Result<()>;

    /// Execute one query and return the normalized answer.
    fn execute(&self, query: &Query) -> Result<QueryAnswer>;

    /// The backend's execution profile and storage totals.
    fn answer_stats(&self) -> IndexStats;
}

impl SecureIndex for ConcealerSystem {
    /// Ingest via the data provider pipeline (Phase 1 of the paper).
    fn ingest_epoch(
        &mut self,
        epoch_start: u64,
        records: &[Record],
        mut rng: &mut dyn RngCore,
    ) -> Result<()> {
        // `&mut &mut dyn RngCore` is a sized `RngCore`, satisfying the
        // inherent method's generic bound.
        ConcealerSystem::ingest_epoch(self, epoch_start, records, &mut rng).map(|_| ())
    }

    /// Execute as the system's default user (the first registered user)
    /// with default [`ExecOptions`]. Use [`ConcealerSystem::session`] when
    /// a specific user or non-default options are needed.
    fn execute(&self, query: &Query) -> Result<QueryAnswer> {
        let user = self.default_user().ok_or(crate::CoreError::InvalidQuery {
            reason: "SecureIndex::execute needs a registered user; call register_user first",
        })?;
        self.session(user).execute(query)
    }

    fn answer_stats(&self) -> IndexStats {
        IndexStats {
            backend: "concealer",
            epochs: self.engine().registered_epochs().len(),
            rows_stored: self.store().total_rows(),
            volume_hiding: true,
            verifiable: self.engine().config().verify_integrity,
            full_scan_per_query: false,
        }
    }
}
