//! Query execution engine and the top-level [`ConcealerSystem`] facade.
//!
//! The engine is the code that, in the real deployment, runs inside the SGX
//! enclave at the service provider: it caches the decrypted per-epoch
//! metadata (`cell_id[]`, `c_tuple[]`, per-cell counts, verifiable tags and
//! per-bin re-encryption rounds), turns queries into fixed-size fetches via
//! the BPB / eBPB / winSecRange methods, verifies, filters and aggregates
//! the fetched tuples, and — for multi-round queries — re-encrypts what it
//! fetched to preserve forward privacy.
//!
//! The public entry points are [`QueryEngine::execute`] (one query,
//! dispatching on its predicate) and [`QueryEngine::execute_batch`]
//! (many queries with cross-query bin deduplication, optionally executed on
//! a scoped thread pool — see [`ExecOptions::parallelism`]); both are
//! normally reached through [`crate::Session`]. The pre-0.2 `point_query` /
//! `range_query` split was removed in 0.3 (see `MIGRATION.md`).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use concealer_crypto::{DetBuffer, EpochId, EpochKey, MasterKey};
use concealer_enclave::registry::{Credential, QueryScope, UserId, UserRegistry};
use concealer_enclave::{Enclave, EnclaveConfig, SideChannelMeter};
use concealer_storage::{AccessEvent, AccessObserver, EncryptedRow, EpochStore};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::api::{ExecOptions, Session};
use crate::bin_cache::{BinCache, BinCacheStats, BinEntry, BinKey, DEFAULT_BIN_CACHE_CAPACITY};
use crate::bins::{BinPlan, PackingAlgorithm};
use crate::codec;
use crate::config::SystemConfig;
use crate::dynamic;
use crate::grid::Grid;
use crate::provider::{DataProvider, EpochStats};
use crate::query::filter::{
    build_filter_plan, process_rows_oblivious, process_rows_plain, DecodedBin, FilterPlan,
};
use crate::query::trapdoor::{generate_oblivious, generate_plain, FetchSpec};
use crate::query::{Accumulator, Predicate, Query, QueryAnswer};
use crate::superbin::SuperBinPlan;
use crate::types::{EpochWindow, Record};
use crate::verify::verify_cell_chain;
use crate::{CoreError, Result};

/// Which range-query execution method to use (§4.2, §5.2, §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum RangeMethod {
    /// Convert the range into point-style bin fetches (trivial method).
    Bpb,
    /// Enhanced BPB: fetch only the cell-ids covering the range, padded to
    /// the worst-case window size (leaks under sliding windows —
    /// Example 5.2.2).
    #[default]
    Ebpb,
    /// Fixed-interval bins: fetch whole pre-defined time intervals, immune
    /// to sliding-window attacks.
    WinSecRange,
}

/// Enclave-resident state for one registered epoch.
#[derive(Debug)]
struct EpochRuntime {
    epoch_id: u64,
    window: EpochWindow,
    /// `cell_id[]`: flat cell index → cell-id.
    cell_assignment: Vec<u32>,
    /// Per-flat-cell tuple counts (eBPB metadata).
    cell_counts: Vec<u32>,
    /// `c_tuple[]`: cell-id → tuple count.
    c_tuple: Vec<u32>,
    /// cell-id → number of grid cells assigned to it (super-bin weights).
    cells_per_cell_id: Vec<u32>,
    /// Number of fake tuples shipped with the epoch.
    total_fakes: u64,
    /// Cached verifiable tags (encrypted), one per cell-id; empty when the
    /// data provider skipped verification.
    tags: Vec<Vec<u8>>,
    /// The BPB bin plan.
    bin_plan: BinPlan,
    /// Per-bin re-encryption round counters (the §6 meta-index).
    bin_rounds: Vec<u64>,
    /// Super-bin plan, built lazily on first use.
    superbin_plan: Option<SuperBinPlan>,
    /// Cached eBPB worst-case window sizes, keyed by window length ℓ.
    ebpb_sizes: HashMap<u64, u64>,
    /// winSecRange interval plan, built lazily.
    winsec: Option<WinSecPlan>,
}

/// winSecRange fixed-interval plan for one epoch.
#[derive(Debug, Clone)]
struct WinSecPlan {
    /// Per interval: the cell-ids whose cells fall in the interval, with
    /// their tuple counts, plus the fake range padding the interval to the
    /// common size.
    intervals: Vec<WinSecInterval>,
    /// Common (maximum) interval size in tuples.
    interval_size: u64,
    /// Interval length in grid time rows (λ).
    rows_per_interval: u64,
}

#[derive(Debug, Clone)]
struct WinSecInterval {
    cells: Vec<(u32, u32)>,
    real: u64,
    fake_range: (u64, u64),
}

/// Diagnostics for one epoch's query plans, exposed by
/// [`QueryEngine::plan_stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanStats {
    /// The epoch the statistics describe.
    pub epoch_id: u64,
    /// Number of BPB bins.
    pub num_bins: usize,
    /// Common bin size (tuples fetched per bin retrieval).
    pub bin_size: u64,
    /// winSecRange interval diagnostics (the plan is built on demand).
    pub winsec: WinSecStats,
}

/// winSecRange plan diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WinSecStats {
    /// Number of fixed intervals the epoch is divided into.
    pub num_intervals: usize,
    /// Common (maximum) interval size in tuples — every interval retrieval
    /// transfers this many rows.
    pub interval_size: u64,
    /// Interval length in grid time rows (λ).
    pub rows_per_interval: u64,
    /// Real tuples per interval (before fake padding to `interval_size`).
    pub real_tuples_per_interval: Vec<u64>,
}

/// A user's handle on the system: their id and credential, as issued by the
/// data provider at registration time.
#[derive(Debug, Clone)]
pub struct UserHandle {
    /// The registered user id.
    pub user_id: UserId,
    /// The credential issued by the data provider.
    pub credential: Credential,
}

/// The per-query fetch plan computed by the batch planner: which
/// `(epoch, bin)` pairs the query needs, and the epochs it touches.
struct BinFetchPlan {
    bins: BTreeSet<(u64, usize)>,
    epochs_touched: usize,
    verified: bool,
}

/// One epoch's contribution to a query answer, produced by
/// [`QueryEngine::execute_partials`] on the process that owns the epoch and
/// recombined — possibly on another machine — by [`merge_partials`].
///
/// A partial carries the *unfinished* aggregation state
/// ([`Accumulator`]) rather than a finished [`QueryAnswer`]: finishing is
/// not mergeable (an average collapses `sum`/`count` into one float; row
/// collections lose their epoch grouping), but accumulators merge
/// associatively, so recombining per-epoch partials in ascending epoch
/// order reproduces the exact accumulator-merge sequence — and therefore
/// the bit-identical answer — of a single-process execution.
#[derive(Debug, Clone)]
pub struct EpochPartial {
    /// The epoch this partial covers (epoch ids are epoch start times).
    pub epoch_id: u64,
    /// The epoch's aggregation state: every matching tuple of this epoch
    /// folded in ascending bin order.
    pub acc: Accumulator,
    /// Encrypted rows fetched from this epoch's segments.
    pub rows_fetched: usize,
    /// Rows the enclave decrypted while filtering this epoch.
    pub rows_decrypted: usize,
    /// Whether hash-chain verification ran for this epoch's fetches.
    pub verified: bool,
}

/// Recombine per-epoch partials into the answer a single-process execution
/// of `query` over the same epochs would produce.
///
/// Partials may arrive from different shard processes in any order; they
/// are sorted by epoch id so accumulator merges (and therefore collected
/// row order) match the ascending-epoch sequential loop. The caller must
/// supply at most one partial per epoch — epoch ownership is a partition,
/// so a correctly sharded deployment can never produce duplicates.
///
/// An empty partial set means no epoch overlapped the query, which is the
/// [`CoreError::NoDataForRange`] condition, exactly as in
/// [`QueryEngine::execute`].
pub fn merge_partials(query: &Query, mut partials: Vec<EpochPartial>) -> Result<QueryAnswer> {
    if partials.is_empty() {
        return Err(CoreError::NoDataForRange);
    }
    partials.sort_by_key(|p| p.epoch_id);
    let epochs_touched = partials.len();
    let mut acc = Accumulator::default();
    let mut rows_fetched = 0usize;
    let mut rows_decrypted = 0usize;
    let mut verified = true;
    for partial in partials {
        acc.merge(partial.acc);
        rows_fetched += partial.rows_fetched;
        rows_decrypted += partial.rows_decrypted;
        verified &= partial.verified;
    }
    Ok(QueryAnswer {
        value: acc.finish(&query.aggregate),
        rows_fetched,
        rows_decrypted,
        verified,
        epochs_touched,
    })
}

/// A partial-batch query's plan: the epochs it touches on this process
/// (with their per-epoch verification flags, ascending) and the
/// `(epoch, bin)` pairs a BPB execution fetches for it. Unlike
/// [`BinFetchPlan`], an empty plan is not an error — other shards may own
/// the query's epochs.
struct PartialBinPlan {
    epochs: Vec<(u64, bool)>,
    bins: BTreeSet<(u64, usize)>,
}

/// Per-execution filter-plan memo, keyed by `(epoch_id, round)`: one query's
/// plan against a given round key is built once and reused for every bin
/// encrypted under that key. Local to one query execution — plans are
/// query-specific, so nothing is shared across queries.
type PlanMemo = HashMap<(u64, u64), FilterPlan>;

/// Wall-clock phase accumulators (nanoseconds), shared across worker
/// threads. The buckets overlap deliberately coarse-grained work — they
/// need not sum to total batch time — but their *ratios* show where an
/// execution spends its time (see [`PhaseBreakdown`]).
#[derive(Debug, Default)]
struct PhaseTimers {
    fetch_ns: AtomicU64,
    decrypt_ns: AtomicU64,
    verify_ns: AtomicU64,
    aggregate_ns: AtomicU64,
}

/// Snapshot of the engine's per-phase wall-clock accumulators, exposed by
/// [`QueryEngine::phase_breakdown`]. All values are cumulative nanoseconds
/// since construction or the last [`QueryEngine::reset_phases`]. Parallel
/// executions accumulate each worker's time, so totals can exceed
/// wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseBreakdown {
    /// Trapdoor generation, store fetches, and warm-cache replay fetches.
    pub fetch_ns: u64,
    /// Filter/aggregate passes over fetched rows (incl. payload decryption
    /// and filter-plan construction).
    pub decrypt_ns: u64,
    /// Hash-chain verification of fetched bins.
    pub verify_ns: u64,
    /// Batch planning and answer assembly.
    pub aggregate_ns: u64,
}

/// Add the elapsed time since `start` to a phase accumulator.
fn bump_phase(counter: &AtomicU64, start: Instant) {
    // Saturating at u64::MAX nanoseconds (~584 years) is fine.
    let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    counter.fetch_add(ns, Ordering::Relaxed);
}

/// Cap the requested worker count at the host's hardware thread count.
///
/// Workers that cannot run concurrently only add spawn and scheduling
/// overhead — on a single-core host a "parallel" batch is strictly slower
/// than the sequential loop while producing the identical answers and
/// trace, so the parallelism knob must never cost throughput there.
/// Setting `CONCEALER_FORCE_THREADS=1` keeps the requested count; the
/// trace-equality and stress tests use it so the pool machinery is
/// exercised even on single-core CI hosts.
fn effective_workers(requested: usize) -> usize {
    if std::env::var_os("CONCEALER_FORCE_THREADS").is_some_and(|v| v != "0") {
        return requested;
    }
    let hw = std::thread::available_parallelism().map_or(usize::MAX, std::num::NonZeroUsize::get);
    requested.min(hw)
}

/// The enclave-side query engine.
pub struct QueryEngine {
    config: SystemConfig,
    enclave: Enclave,
    store: EpochStore,
    epochs: RwLock<BTreeMap<u64, EpochRuntime>>,
    rng: Mutex<StdRng>,
    bin_cache: BinCache,
    phases: PhaseTimers,
}

impl std::fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryEngine")
            .field("epochs", &self.epochs.read().len())
            .field("oblivious", &self.enclave.is_oblivious())
            .finish_non_exhaustive()
    }
}

impl QueryEngine {
    /// Create an engine bound to an enclave and a store.
    #[must_use]
    pub fn new(config: SystemConfig, enclave: Enclave, store: EpochStore, rng_seed: u64) -> Self {
        QueryEngine {
            config,
            enclave,
            store,
            epochs: RwLock::new(BTreeMap::new()),
            rng: Mutex::new(StdRng::seed_from_u64(rng_seed)),
            bin_cache: BinCache::new(DEFAULT_BIN_CACHE_CAPACITY),
            phases: PhaseTimers::default(),
        }
    }

    /// The enclave this engine runs in.
    #[must_use]
    pub fn enclave(&self) -> &Enclave {
        &self.enclave
    }

    /// Snapshot of the per-phase wall-clock accumulators.
    #[must_use]
    pub fn phase_breakdown(&self) -> PhaseBreakdown {
        PhaseBreakdown {
            fetch_ns: self.phases.fetch_ns.load(Ordering::Relaxed),
            decrypt_ns: self.phases.decrypt_ns.load(Ordering::Relaxed),
            verify_ns: self.phases.verify_ns.load(Ordering::Relaxed),
            aggregate_ns: self.phases.aggregate_ns.load(Ordering::Relaxed),
        }
    }

    /// Reset the per-phase wall-clock accumulators to zero (benchmarks call
    /// this between timed sections).
    pub fn reset_phases(&self) {
        self.phases.fetch_ns.store(0, Ordering::Relaxed);
        self.phases.decrypt_ns.store(0, Ordering::Relaxed);
        self.phases.verify_ns.store(0, Ordering::Relaxed);
        self.phases.aggregate_ns.store(0, Ordering::Relaxed);
    }

    /// Statistics of the enclave-side decrypted-bin cache.
    #[must_use]
    pub fn bin_cache_stats(&self) -> BinCacheStats {
        self.bin_cache.stats()
    }

    /// Resize the enclave-side decrypted-bin cache (`0` disables it and
    /// flushes resident entries). Purely an enclave-memory/throughput
    /// trade-off: the adversary-visible access pattern and the side-channel
    /// meter are identical at every capacity (see [`crate::BinCacheStats`]).
    pub fn set_bin_cache_capacity(&self, capacity: usize) {
        self.bin_cache.set_capacity(capacity);
    }

    /// The system configuration this engine was provisioned with.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The side-channel meter of the underlying enclave.
    #[must_use]
    pub fn meter(&self) -> &SideChannelMeter {
        self.enclave.meter()
    }

    /// Epoch ids currently registered with the engine.
    #[must_use]
    pub fn registered_epochs(&self) -> Vec<u64> {
        self.epochs.read().keys().copied().collect()
    }

    /// Bin-plan statistics for an epoch: `(num_bins, bin_size)`.
    pub fn bin_stats(&self, epoch_id: u64) -> Result<(usize, u64)> {
        let epochs = self.epochs.read();
        let rt = epochs.get(&epoch_id).ok_or(CoreError::NoDataForRange)?;
        Ok((rt.bin_plan.num_bins(), rt.bin_plan.bin_size))
    }

    /// Full query-plan diagnostics for an epoch: the BPB bin plan plus the
    /// winSecRange interval layout (building the interval plan on demand if
    /// no winSecRange query has run yet).
    pub fn plan_stats(&self, epoch_id: u64) -> Result<PlanStats> {
        let mut epochs = self.epochs.write();
        let rt = epochs.get_mut(&epoch_id).ok_or(CoreError::NoDataForRange)?;
        if rt.winsec.is_none() {
            rt.winsec = Some(self.build_winsec_plan(rt));
        }
        let plan = rt.winsec.as_ref().expect("just built");
        Ok(PlanStats {
            epoch_id,
            num_bins: rt.bin_plan.num_bins(),
            bin_size: rt.bin_plan.bin_size,
            winsec: WinSecStats {
                num_intervals: plan.intervals.len(),
                interval_size: plan.interval_size,
                rows_per_interval: plan.rows_per_interval,
                real_tuples_per_interval: plan.intervals.iter().map(|i| i.real).collect(),
            },
        })
    }

    /// Register an ingested epoch: pull its metadata from the store,
    /// decrypt it inside the enclave, and build the bin plan (Step 0 of the
    /// BPB method).
    pub fn register_epoch(&self, epoch_id: u64) -> Result<()> {
        let metadata = self.store.metadata(epoch_id)?;
        let key = self.enclave.epoch_key(EpochId(epoch_id), 0);

        let assignment_and_counts = codec::decode_u32_vector(
            &key.rand
                .decrypt(&metadata.enc_cell_id)
                .map_err(|_| CoreError::CorruptMetadata)?,
        )?;
        let c_tuple = codec::decode_u32_vector(
            &key.rand
                .decrypt(&metadata.enc_c_tuple)
                .map_err(|_| CoreError::CorruptMetadata)?,
        )?;
        if assignment_and_counts.len() % 2 != 0 {
            return Err(CoreError::CorruptMetadata);
        }
        let total_cells = assignment_and_counts.len() / 2;
        let cell_assignment = assignment_and_counts[..total_cells].to_vec();
        let cell_counts = assignment_and_counts[total_cells..].to_vec();

        let mut cells_per_cell_id = vec![0u32; self.config.grid.num_cell_ids as usize];
        for &cid in &cell_assignment {
            if let Some(slot) = cells_per_cell_id.get_mut(cid as usize) {
                *slot += 1;
            }
        }

        let real_total: u64 = c_tuple.iter().map(|&c| u64::from(c)).sum();
        let total_fakes = (metadata.advertised_rows as u64).saturating_sub(real_total);

        let bin_plan = BinPlan::build(&c_tuple, PackingAlgorithm::FirstFitDecreasing, None);
        let bin_rounds = vec![0u64; bin_plan.num_bins()];

        let runtime = EpochRuntime {
            epoch_id,
            window: EpochWindow {
                start: epoch_id,
                duration: self.config.epoch_duration,
            },
            cell_assignment,
            cell_counts,
            c_tuple,
            cells_per_cell_id,
            total_fakes,
            tags: metadata.enc_tags,
            bin_plan,
            bin_rounds,
            superbin_plan: None,
            ebpb_sizes: HashMap::new(),
            winsec: None,
        };
        self.epochs.write().insert(epoch_id, runtime);
        Ok(())
    }

    /// Execute one query, dispatching on its predicate: point predicates
    /// fetch their single bin, range predicates run the method selected by
    /// `opts.method`.
    pub fn execute(
        &self,
        user: &UserHandle,
        query: &Query,
        opts: ExecOptions,
        registry_scope: QueryScope,
    ) -> Result<QueryAnswer> {
        match &query.predicate {
            Predicate::Point { .. } => self.execute_point(user, query, opts, registry_scope),
            Predicate::Range { .. } => self.execute_range(user, query, opts, registry_scope),
        }
    }

    /// Execute a batch of queries with cross-query bin deduplication.
    ///
    /// Under the bin-granular BPB method the engine plans every query,
    /// takes the union of the `(epoch, bin)` fetches, fetches and
    /// hash-chain-verifies each bin **once**, then filters and aggregates
    /// the fetched rows per query — fixed-size bins are the unit of
    /// deduplication.
    ///
    /// Leakage: the set of rows the adversary observes is exactly the
    /// *union* of the per-query row sets of sequential execution — each bin
    /// is still fetched whole, so per-bin fetch sizes are unchanged and
    /// batching reveals nothing a sequential execution of the same queries
    /// would not (it only *removes* duplicate fetches). Per-query answers,
    /// including the fetch metadata, equal sequential BPB execution.
    ///
    /// Batches with any other configuration fall back to executing the
    /// queries sequentially, preserving the configured profile exactly:
    ///
    /// * `opts.method` = `Ebpb` / `WinSecRange` — those methods fetch
    ///   cell-groups and whole intervals, not bins; silently re-planning
    ///   them at bin granularity would change the access pattern the
    ///   caller chose (winSecRange exists to resist sliding-window
    ///   attacks, Example 5.2.2).
    /// * `opts.forward_private` — the §6 protocol re-encrypts fetched bins
    ///   after every query, so deduplicating fetches across queries would
    ///   change its semantics.
    ///
    /// With `opts.parallelism > 1`, dedup-eligible batches run their
    /// fetch+verify stage and their per-query filter/aggregate stage on a
    /// scoped thread pool. Parallel execution is **observably identical**
    /// to sequential execution: answers (including fetch metadata) are
    /// bit-identical, and every worker records storage accesses into a
    /// task-local buffer that is merged into the shared observer in
    /// ascending `(epoch, bin)` order — the order the sequential loop
    /// fetches in — so even the event-level trace matches. The fallback
    /// configurations above ignore the knob entirely and stay sequential:
    /// interleaving their fetches across threads would observably reorder
    /// the access pattern the caller configured.
    pub fn execute_batch(
        &self,
        user: &UserHandle,
        queries: &[Query],
        opts: ExecOptions,
    ) -> Vec<Result<QueryAnswer>> {
        if opts.forward_private || opts.method != RangeMethod::Bpb {
            return queries
                .iter()
                .map(|q| self.execute(user, q, opts, scope_for_query(q)))
                .collect();
        }

        let mut results: Vec<Option<Result<QueryAnswer>>> = queries.iter().map(|_| None).collect();
        let mut plans: Vec<Option<BinFetchPlan>> = queries.iter().map(|_| None).collect();

        let plan_start = Instant::now();
        let mut epochs = self.epochs.write();
        for (i, query) in queries.iter().enumerate() {
            if let Err(e) =
                self.enclave
                    .open_session(user.user_id, &user.credential, scope_for_query(query))
            {
                results[i] = Some(Err(e.into()));
                continue;
            }
            match self.plan_bins(&mut epochs, query, &opts) {
                Ok(plan) => plans[i] = Some(plan),
                Err(e) => results[i] = Some(Err(e)),
            }
        }

        // The union of every query's fetch set, ascending: each pair
        // fetched once, in deterministic order.
        let union: Vec<(u64, usize)> = plans
            .iter()
            .flatten()
            .flat_map(|p| &p.bins)
            .copied()
            .collect::<BTreeSet<(u64, usize)>>()
            .into_iter()
            .collect();

        // Planning needed `&mut` (lazy super-bin plans); execution only
        // reads, so downgrade to a read guard: batches from different
        // sessions, point queries and ingest registration all proceed
        // concurrently with the fetch/aggregate stages. Across the guard
        // swap the registry can only grow — epochs are never removed
        // (re-shipping an epoch concurrently with querying it is outside
        // the deployment model, which appends epochs) — and
        // `fetch_bin_rows` re-derives each bin's round key at fetch time,
        // so the plans stay valid.
        drop(epochs);
        let epochs = self.epochs.read();
        let epochs: &BTreeMap<u64, EpochRuntime> = &epochs;
        bump_phase(&self.phases.aggregate_ns, plan_start);
        let workers = effective_workers(opts.parallelism).min(union.len());
        if workers > 1 {
            self.execute_union_parallel(
                epochs,
                queries,
                &opts,
                &union,
                workers,
                &plans,
                &mut results,
            );
            self.store.mark_query_boundary();
            return results
                .into_iter()
                .map(|r| r.expect("parallel batch resolves every query"))
                .collect();
        }

        let mut accs: Vec<Accumulator> = queries.iter().map(|_| Accumulator::default()).collect();
        let mut fetched: Vec<usize> = vec![0; queries.len()];
        let mut decrypted: Vec<usize> = vec![0; queries.len()];
        let mut memos: Vec<PlanMemo> = queries.iter().map(|_| PlanMemo::new()).collect();

        for (epoch_id, bin_idx) in union {
            let rt = epochs.get(&epoch_id).expect("planned epoch is registered");
            let fetch = self.fetch_bin_rows(&self.store, rt, bin_idx, &opts);
            let interested = |plan: &BinFetchPlan| plan.bins.contains(&(epoch_id, bin_idx));
            match fetch {
                Err(e) => {
                    // Every query that needed this bin fails with the fetch
                    // error (integrity violation, storage fault, …).
                    for (i, plan) in plans.iter_mut().enumerate() {
                        if plan.as_ref().is_some_and(&interested) {
                            results[i] = Some(Err(e.clone()));
                            *plan = None;
                        }
                    }
                }
                Ok(entry) => {
                    for (i, plan) in plans.iter_mut().enumerate() {
                        if !plan.as_ref().is_some_and(&interested) {
                            continue;
                        }
                        fetched[i] += entry.rows.len();
                        match self.process_rows(
                            entry.key.as_ref(),
                            rt,
                            entry.round,
                            &queries[i],
                            &opts,
                            &entry.rows,
                            &entry.decoded,
                            &mut memos[i],
                        ) {
                            Ok((bin_acc, d)) => {
                                decrypted[i] += d;
                                accs[i].merge(bin_acc);
                            }
                            Err(e) => {
                                // Drop the failed query's plan so its
                                // remaining bins are neither fetched on its
                                // behalf nor processed, and the *first*
                                // error is the one reported.
                                results[i] = Some(Err(e));
                                *plan = None;
                            }
                        }
                    }
                }
            }
        }
        self.store.mark_query_boundary();

        let assemble_start = Instant::now();
        let mut out = Vec::with_capacity(queries.len());
        for (i, result) in results.into_iter().enumerate() {
            if let Some(r) = result {
                out.push(r);
                continue;
            }
            let plan = plans[i].take().expect("planned or errored");
            let acc = std::mem::take(&mut accs[i]);
            out.push(Ok(QueryAnswer {
                value: acc.finish(&queries[i].aggregate),
                rows_fetched: fetched[i],
                rows_decrypted: decrypted[i],
                verified: plan.verified,
                epochs_touched: plan.epochs_touched,
            }));
        }
        bump_phase(&self.phases.aggregate_ns, assemble_start);
        out
    }

    /// The parallel execution of a planned batch: stage 1 fetches and
    /// hash-chain-verifies every `(epoch, bin)` of `union` once across the
    /// pool, in per-worker *chunks* (contiguous slices of the union, sized
    /// by `opts.fetch_chunk`, default one chunk per worker) so task-queue
    /// traffic is per-chunk rather than per-bin; stage 2 filters and
    /// aggregates each query's bins in ascending bin order (the sequential
    /// order) from the shared fetch results. Both stages run on a **single**
    /// scope: [`rayon::Scope::quiesce`] is the barrier between them, so the
    /// pool's threads are spawned (and joined) once per batch, not once per
    /// stage.
    ///
    /// Each chunk task records storage accesses into a task-local observer;
    /// the buffers are concatenated in `union` order and appended to the
    /// shared observer atomically, so the adversary-visible trace is
    /// event-for-event identical to the sequential loop.
    #[allow(clippy::too_many_arguments)]
    fn execute_union_parallel(
        &self,
        epochs: &BTreeMap<u64, EpochRuntime>,
        queries: &[Query],
        opts: &ExecOptions,
        union: &[(u64, usize)],
        workers: usize,
        plans: &[Option<BinFetchPlan>],
        results: &mut [Option<Result<QueryAnswer>>],
    ) {
        // The calling thread participates in draining the pool's queue, so
        // spawn one fewer worker than the requested parallelism: `workers`
        // threads execute in total, matching the knob's documentation.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(workers - 1)
            .build()
            .expect("the threadpool shim never fails to build");

        // `fetch_chunk == 0` means auto: slice the union evenly, one chunk
        // per worker, so stage 1 enqueues exactly `workers` tasks.
        let chunk_size = if opts.fetch_chunk == 0 {
            union.len().div_ceil(workers)
        } else {
            opts.fetch_chunk
        }
        .max(1);

        // One result slot per union bin (chunk tasks fill disjoint slices)
        // and one event buffer per chunk, merged in chunk order below.
        let fetches: Vec<OnceLock<Result<Arc<BinEntry>>>> =
            union.iter().map(|_| OnceLock::new()).collect();
        let buffers: Vec<Mutex<Vec<AccessEvent>>> = union
            .chunks(chunk_size)
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        let fetches = &fetches;
        let buffers = &buffers;

        pool.scope(|s| {
            // Stage 1: fetch + verify each union bin exactly once, one task
            // per chunk. Each task reuses one observer for its whole chunk.
            for (chunk_idx, chunk) in union.chunks(chunk_size).enumerate() {
                s.spawn(move |_| {
                    let local = AccessObserver::new();
                    let store = self.store.observed_by(local.clone());
                    for (offset, &(epoch_id, bin_idx)) in chunk.iter().enumerate() {
                        let rt = epochs.get(&epoch_id).expect("planned epoch is registered");
                        let result = self.fetch_bin_rows(&store, rt, bin_idx, opts);
                        let slot = chunk_idx * chunk_size + offset;
                        assert!(
                            fetches[slot].set(result).is_ok(),
                            "each union slot is filled exactly once"
                        );
                    }
                    *buffers[chunk_idx].lock() = local.take_events();
                });
            }

            // Barrier: wait for stage 1 without tearing the pool down.
            s.quiesce();

            // Deterministic merge: chunk buffers in ascending (epoch, bin)
            // order — the exact order the sequential loop records in —
            // under a single observer lock acquisition.
            let merged: Vec<AccessEvent> = buffers
                .iter()
                .flat_map(|b| std::mem::take(&mut *b.lock()))
                .collect();
            self.store.observer().record_batch(merged);

            // Stage 2: per-query filter/aggregate over the shared fetch
            // results, on the same still-open scope.
            for ((result, plan), query) in results.iter_mut().zip(plans).zip(queries) {
                if result.is_some() {
                    continue; // session or planning error
                }
                let plan = plan.as_ref().expect("planned or errored");
                s.spawn(move |_| {
                    *result = Some(
                        self.aggregate_planned_query(epochs, union, fetches, plan, query, opts),
                    );
                });
            }
        });
    }

    /// Filter and aggregate one planned query from the batch's shared fetch
    /// results, visiting its bins in ascending order so accumulator merges
    /// (and therefore collected-row order) match sequential execution. The
    /// first failing bin — fetch error or processing error — determines the
    /// query's error, as in the sequential loop.
    fn aggregate_planned_query(
        &self,
        epochs: &BTreeMap<u64, EpochRuntime>,
        union: &[(u64, usize)],
        fetches: &[OnceLock<Result<Arc<BinEntry>>>],
        plan: &BinFetchPlan,
        query: &Query,
        opts: &ExecOptions,
    ) -> Result<QueryAnswer> {
        let mut acc = Accumulator::default();
        let mut fetched = 0usize;
        let mut decrypted = 0usize;
        let mut memo = PlanMemo::new();
        for pair in &plan.bins {
            let idx = union
                .binary_search(pair)
                .expect("every planned bin is in the union");
            let entry = match fetches[idx].get().expect("stage 1 filled every slot") {
                Ok(entry) => entry,
                Err(e) => return Err(e.clone()),
            };
            let rt = epochs.get(&pair.0).expect("planned epoch is registered");
            fetched += entry.rows.len();
            let (bin_acc, d) = self.process_rows(
                entry.key.as_ref(),
                rt,
                entry.round,
                query,
                opts,
                &entry.rows,
                &entry.decoded,
                &mut memo,
            )?;
            decrypted += d;
            acc.merge(bin_acc);
        }
        Ok(QueryAnswer {
            value: acc.finish(&query.aggregate),
            rows_fetched: fetched,
            rows_decrypted: decrypted,
            verified: plan.verified,
            epochs_touched: plan.epochs_touched,
        })
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Whether this execution runs the oblivious (Concealer+) code paths.
    fn oblivious_enabled(&self, opts: &ExecOptions) -> bool {
        opts.oblivious
            .unwrap_or_else(|| self.enclave.is_oblivious())
    }

    /// Whether fetched bins of `rt` get hash-chain-verified under `opts`.
    fn verification_active(&self, opts: &ExecOptions, rt: &EpochRuntime) -> bool {
        opts.verify && self.config.verify_integrity && !rt.tags.is_empty()
    }

    /// Execute a query with a point predicate: locate the cell, fetch its
    /// bin, filter and aggregate.
    fn execute_point(
        &self,
        user: &UserHandle,
        query: &Query,
        opts: ExecOptions,
        registry_scope: QueryScope,
    ) -> Result<QueryAnswer> {
        let _session = self
            .enclave
            .open_session(user.user_id, &user.credential, registry_scope)?;
        let Predicate::Point { dims, time } = &query.predicate else {
            return Err(CoreError::InvalidQuery {
                reason: "point execution requires a Point predicate",
            });
        };

        let epochs = self.epochs.read();
        let rt = epochs
            .values()
            .find(|rt| rt.window.contains(*time))
            .ok_or(CoreError::NoDataForRange)?;
        let bin_idx = self.locate_point_bin(rt, dims, *time)?;

        let mut fetched = 0usize;
        let mut decrypted = 0usize;
        let mut acc = Accumulator::default();
        let mut memo = PlanMemo::new();
        self.fetch_and_process_bin(
            rt,
            bin_idx,
            query,
            &opts,
            &mut acc,
            &mut fetched,
            &mut decrypted,
            &mut memo,
        )?;
        let verified = self.verification_active(&opts, rt);
        self.store.mark_query_boundary();

        Ok(QueryAnswer {
            value: acc.finish(&query.aggregate),
            rows_fetched: fetched,
            rows_decrypted: decrypted,
            verified,
            epochs_touched: 1,
        })
    }

    /// Execute a query over its time span with the method in `opts`
    /// (§4.2, §5). Also accepts point predicates (treated as a
    /// single-instant range) for the deprecated `range_query` shim.
    fn execute_range(
        &self,
        user: &UserHandle,
        query: &Query,
        opts: ExecOptions,
        registry_scope: QueryScope,
    ) -> Result<QueryAnswer> {
        let _session = self
            .enclave
            .open_session(user.user_id, &user.credential, registry_scope)?;
        let (t_start, t_end) = query.predicate.time_span();

        let mut epochs = self.epochs.write();
        let touched: Vec<u64> = epochs
            .values()
            .filter(|rt| rt.window.overlaps(t_start, t_end))
            .map(|rt| rt.epoch_id)
            .collect();
        if touched.is_empty() {
            return Err(CoreError::NoDataForRange);
        }
        let multi_round = opts.forward_private && epochs.len() > 1;
        // The §6 protocol spans the whole stretch of rounds between the
        // first and last satisfying round.
        let span: Vec<u64> = if multi_round {
            let lo = *touched.first().expect("non-empty");
            let hi = *touched.last().expect("non-empty");
            epochs
                .keys()
                .copied()
                .filter(|e| *e >= lo && *e <= hi)
                .collect()
        } else {
            touched.clone()
        };

        let mut acc = Accumulator::default();
        let mut fetched = 0usize;
        let mut decrypted = 0usize;
        let mut verified = true;
        let mut epochs_touched = 0usize;
        let mut memo = PlanMemo::new();

        for epoch_id in span {
            let rt = epochs.get_mut(&epoch_id).expect("registered epoch");
            let satisfies = rt.window.overlaps(t_start, t_end);
            epochs_touched += 1;
            verified &= self.verification_active(&opts, rt);

            let mut bins_fetched: Vec<usize> = if satisfies {
                self.execute_epoch_slice(
                    rt,
                    query,
                    &opts,
                    &mut acc,
                    &mut fetched,
                    &mut decrypted,
                    &mut memo,
                )?
            } else {
                Vec::new()
            };

            // §6: when the query spans multiple rounds, fetch extra random
            // bins from every round in the span and re-encrypt everything.
            if multi_round {
                let extra = dynamic::extra_bins_per_round(rt.bin_plan.num_bins());
                let mut rng = self.rng.lock();
                while bins_fetched.len() < extra && bins_fetched.len() < rt.bin_plan.num_bins() {
                    let candidate = rng.gen_range(0..rt.bin_plan.num_bins());
                    if !bins_fetched.contains(&candidate) {
                        drop(rng);
                        self.fetch_and_process_bin(
                            rt,
                            candidate,
                            query,
                            &opts,
                            &mut Accumulator::default(),
                            &mut fetched,
                            &mut decrypted,
                            &mut memo,
                        )?;
                        bins_fetched.push(candidate);
                        rng = self.rng.lock();
                    }
                }
                drop(rng);
                for bin_idx in bins_fetched {
                    self.reencrypt_and_rewrite_bin(rt, bin_idx)?;
                }
            }
        }
        self.store.mark_query_boundary();

        Ok(QueryAnswer {
            value: acc.finish(&query.aggregate),
            rows_fetched: fetched,
            rows_decrypted: decrypted,
            verified,
            epochs_touched,
        })
    }

    /// Run one epoch's share of a range query with the method in `opts`,
    /// folding matches into `acc` and returning the BPB bins fetched (the
    /// §6 multi-round path re-encrypts them afterwards; eBPB / winSecRange
    /// fetch cell-groups and intervals instead, so they return no bins).
    ///
    /// This is the per-epoch body shared by [`QueryEngine::execute_range`]
    /// and [`QueryEngine::execute_partials`]: partial (sharded) execution
    /// runs the *identical* code over each owned epoch, so a multi-node
    /// merge cannot drift from single-process execution.
    #[allow(clippy::too_many_arguments)]
    fn execute_epoch_slice(
        &self,
        rt: &mut EpochRuntime,
        query: &Query,
        opts: &ExecOptions,
        acc: &mut Accumulator,
        fetched: &mut usize,
        decrypted: &mut usize,
        memo: &mut PlanMemo,
    ) -> Result<Vec<usize>> {
        let mut bins_fetched: Vec<usize> = Vec::new();
        match opts.method {
            RangeMethod::Bpb => {
                let bin_set = self.range_bins_for_epoch(rt, query, opts)?;
                for bin_idx in bin_set {
                    self.fetch_and_process_bin(
                        rt, bin_idx, query, opts, acc, fetched, decrypted, memo,
                    )?;
                    bins_fetched.push(bin_idx);
                }
            }
            RangeMethod::Ebpb => {
                let (f, d) = self.execute_ebpb(rt, query, opts, acc)?;
                *fetched += f;
                *decrypted += d;
            }
            RangeMethod::WinSecRange => {
                let (f, d) = self.execute_winsec(rt, query, opts, acc)?;
                *fetched += f;
                *decrypted += d;
            }
        }
        Ok(bins_fetched)
    }

    /// Execute `query` over only the epochs this process holds, returning
    /// one [`EpochPartial`] per touched epoch instead of a finished answer.
    ///
    /// This is the shard half of multi-node execution: each
    /// `concealer-server --shard i/t` process registers an epoch-hash slice
    /// of the deployment's epochs, runs this over the slice, and the
    /// router recombines the partials with [`merge_partials`]. An empty
    /// result is *not* an error — the query's epochs may live on other
    /// shards; only the merged whole can decide
    /// [`CoreError::NoDataForRange`].
    ///
    /// Forward-private (§6) executions are refused with
    /// [`CoreError::InvalidConfig`]: the protocol re-encrypts every bin it
    /// fetched — including extra bins from *non-satisfying* rounds in the
    /// span — under enclave-resident round counters, so its work is not
    /// partitionable by epoch ownership.
    pub fn execute_partials(
        &self,
        user: &UserHandle,
        query: &Query,
        opts: ExecOptions,
        registry_scope: QueryScope,
    ) -> Result<Vec<EpochPartial>> {
        let _session = self
            .enclave
            .open_session(user.user_id, &user.credential, registry_scope)?;
        if opts.forward_private {
            return Err(CoreError::InvalidConfig {
                reason: "forward-private (§6) executions re-encrypt spanning rounds and \
                         cannot be partitioned into per-epoch partials"
                    .to_string(),
            });
        }
        let (t_start, t_end) = query.predicate.time_span();

        let mut epochs = self.epochs.write();
        let touched: Vec<u64> = match &query.predicate {
            Predicate::Point { time, .. } => epochs
                .values()
                .filter(|rt| rt.window.contains(*time))
                .map(|rt| rt.epoch_id)
                .collect(),
            Predicate::Range { .. } => epochs
                .values()
                .filter(|rt| rt.window.overlaps(t_start, t_end))
                .map(|rt| rt.epoch_id)
                .collect(),
        };

        let mut memo = PlanMemo::new();
        let mut out = Vec::with_capacity(touched.len());
        for epoch_id in touched {
            let rt = epochs.get_mut(&epoch_id).expect("registered epoch");
            let verified = self.verification_active(&opts, rt);
            let mut acc = Accumulator::default();
            let mut fetched = 0usize;
            let mut decrypted = 0usize;
            match &query.predicate {
                Predicate::Point { dims, time } => {
                    let bin_idx = self.locate_point_bin(rt, dims, *time)?;
                    self.fetch_and_process_bin(
                        rt,
                        bin_idx,
                        query,
                        &opts,
                        &mut acc,
                        &mut fetched,
                        &mut decrypted,
                        &mut memo,
                    )?;
                }
                Predicate::Range { .. } => {
                    self.execute_epoch_slice(
                        rt,
                        query,
                        &opts,
                        &mut acc,
                        &mut fetched,
                        &mut decrypted,
                        &mut memo,
                    )?;
                }
            }
            out.push(EpochPartial {
                epoch_id,
                acc,
                rows_fetched: fetched,
                rows_decrypted: decrypted,
                verified,
            });
        }
        self.store.mark_query_boundary();
        Ok(out)
    }

    /// Partial-execution counterpart of [`QueryEngine::execute_batch`]:
    /// run a batch over only the epochs this process holds, returning each
    /// query's per-epoch partials.
    ///
    /// The BPB dedup discipline is preserved *within the shard*: every
    /// `(epoch, bin)` pair the batch needs from this process's slice is
    /// fetched and hash-chain-verified once, then filtered per query —
    /// and since per-query fetch metadata equals sequential execution
    /// either way (the `execute_batch` invariant), the merged batch answer
    /// is bit-identical to a single-process batch. eBPB / winSecRange
    /// batches fall back to sequential per-query partial execution, and
    /// forward-private batches are refused per query, both exactly
    /// mirroring [`QueryEngine::execute_batch`]'s fallback rules.
    pub fn execute_batch_partials(
        &self,
        user: &UserHandle,
        queries: &[Query],
        opts: ExecOptions,
    ) -> Vec<Result<Vec<EpochPartial>>> {
        if opts.forward_private || opts.method != RangeMethod::Bpb {
            return queries
                .iter()
                .map(|q| self.execute_partials(user, q, opts, scope_for_query(q)))
                .collect();
        }

        let mut results: Vec<Option<Result<Vec<EpochPartial>>>> =
            queries.iter().map(|_| None).collect();
        let mut plans: Vec<Option<PartialBinPlan>> = queries.iter().map(|_| None).collect();

        let plan_start = Instant::now();
        let mut epochs = self.epochs.write();
        for (i, query) in queries.iter().enumerate() {
            if let Err(e) =
                self.enclave
                    .open_session(user.user_id, &user.credential, scope_for_query(query))
            {
                results[i] = Some(Err(e.into()));
                continue;
            }
            match self.plan_partial_bins(&mut epochs, query, &opts) {
                Ok(plan) => plans[i] = Some(plan),
                Err(e) => results[i] = Some(Err(e)),
            }
        }

        let union: Vec<(u64, usize)> = plans
            .iter()
            .flatten()
            .flat_map(|p| &p.bins)
            .copied()
            .collect::<BTreeSet<(u64, usize)>>()
            .into_iter()
            .collect();

        // Same guard downgrade as `execute_batch`: planning needed `&mut`
        // (lazy super-bin plans), execution only reads.
        drop(epochs);
        let epochs = self.epochs.read();
        let epochs: &BTreeMap<u64, EpochRuntime> = &epochs;
        bump_phase(&self.phases.aggregate_ns, plan_start);

        // One accumulator per (query, touched epoch), pre-seeded so epochs
        // whose bins all miss the query's cells still yield an (empty)
        // partial — they count toward `epochs_touched` and AND into
        // `verified` exactly as in sequential execution.
        let mut parts: Vec<BTreeMap<u64, EpochPartial>> =
            queries.iter().map(|_| BTreeMap::new()).collect();
        for (i, plan) in plans.iter().enumerate() {
            if let Some(plan) = plan {
                for &(epoch_id, verified) in &plan.epochs {
                    parts[i].insert(
                        epoch_id,
                        EpochPartial {
                            epoch_id,
                            acc: Accumulator::default(),
                            rows_fetched: 0,
                            rows_decrypted: 0,
                            verified,
                        },
                    );
                }
            }
        }

        let mut memos: Vec<PlanMemo> = queries.iter().map(|_| PlanMemo::new()).collect();
        for (epoch_id, bin_idx) in union {
            let rt = epochs.get(&epoch_id).expect("planned epoch is registered");
            let fetch = self.fetch_bin_rows(&self.store, rt, bin_idx, &opts);
            let interested = |plan: &PartialBinPlan| plan.bins.contains(&(epoch_id, bin_idx));
            match fetch {
                Err(e) => {
                    for (i, plan) in plans.iter_mut().enumerate() {
                        if plan.as_ref().is_some_and(&interested) {
                            results[i] = Some(Err(e.clone()));
                            *plan = None;
                        }
                    }
                }
                Ok(entry) => {
                    for (i, plan) in plans.iter_mut().enumerate() {
                        if !plan.as_ref().is_some_and(&interested) {
                            continue;
                        }
                        let part = parts[i]
                            .get_mut(&epoch_id)
                            .expect("planned bins lie in touched epochs");
                        part.rows_fetched += entry.rows.len();
                        match self.process_rows(
                            entry.key.as_ref(),
                            rt,
                            entry.round,
                            &queries[i],
                            &opts,
                            &entry.rows,
                            &entry.decoded,
                            &mut memos[i],
                        ) {
                            Ok((bin_acc, d)) => {
                                part.rows_decrypted += d;
                                part.acc.merge(bin_acc);
                            }
                            Err(e) => {
                                results[i] = Some(Err(e));
                                *plan = None;
                            }
                        }
                    }
                }
            }
        }
        self.store.mark_query_boundary();

        let assemble_start = Instant::now();
        let mut out = Vec::with_capacity(queries.len());
        for (i, result) in results.into_iter().enumerate() {
            if let Some(r) = result {
                out.push(r);
                continue;
            }
            // BTreeMap::into_values yields ascending epoch order, the
            // order `merge_partials` re-establishes anyway.
            out.push(Ok(std::mem::take(&mut parts[i]).into_values().collect()));
        }
        bump_phase(&self.phases.aggregate_ns, assemble_start);
        out
    }

    /// Plan one query of a partial batch: the epochs this process holds
    /// that the query touches (with per-epoch verification flags) and the
    /// BPB bins to fetch from them. Shares
    /// [`QueryEngine::locate_point_bin`] /
    /// [`QueryEngine::range_bins_for_epoch`] with every other execution
    /// path. Unlike [`QueryEngine::plan_bins`], zero touched epochs is a
    /// valid (empty) plan, not `NoDataForRange` — other shards may hold
    /// the query's epochs.
    fn plan_partial_bins(
        &self,
        epochs: &mut BTreeMap<u64, EpochRuntime>,
        query: &Query,
        opts: &ExecOptions,
    ) -> Result<PartialBinPlan> {
        match &query.predicate {
            Predicate::Point { dims, time } => {
                let Some(epoch_id) = epochs
                    .values()
                    .find(|rt| rt.window.contains(*time))
                    .map(|rt| rt.epoch_id)
                else {
                    return Ok(PartialBinPlan {
                        epochs: Vec::new(),
                        bins: BTreeSet::new(),
                    });
                };
                let rt = epochs.get_mut(&epoch_id).expect("registered epoch");
                let verified = self.verification_active(opts, rt);
                let bin_idx = self.locate_point_bin(rt, dims, *time)?;
                Ok(PartialBinPlan {
                    epochs: vec![(epoch_id, verified)],
                    bins: BTreeSet::from([(epoch_id, bin_idx)]),
                })
            }
            Predicate::Range { .. } => {
                let (t_start, t_end) = query.predicate.time_span();
                let touched: Vec<u64> = epochs
                    .values()
                    .filter(|rt| rt.window.overlaps(t_start, t_end))
                    .map(|rt| rt.epoch_id)
                    .collect();
                let mut plan = PartialBinPlan {
                    epochs: Vec::with_capacity(touched.len()),
                    bins: BTreeSet::new(),
                };
                for epoch_id in touched {
                    let rt = epochs.get_mut(&epoch_id).expect("registered epoch");
                    plan.epochs
                        .push((epoch_id, self.verification_active(opts, rt)));
                    let bin_set = self.range_bins_for_epoch(rt, query, opts)?;
                    plan.bins.extend(bin_set.into_iter().map(|b| (epoch_id, b)));
                }
                Ok(plan)
            }
        }
    }

    /// Plan a query's bin-granular fetch set: the `(epoch, bin)` pairs a
    /// BPB execution would fetch. Used by [`QueryEngine::execute_batch`];
    /// shares [`QueryEngine::locate_point_bin`] /
    /// [`QueryEngine::range_bins_for_epoch`] with the sequential paths so
    /// batched and sequential execution cannot drift apart.
    fn plan_bins(
        &self,
        epochs: &mut BTreeMap<u64, EpochRuntime>,
        query: &Query,
        opts: &ExecOptions,
    ) -> Result<BinFetchPlan> {
        match &query.predicate {
            Predicate::Point { dims, time } => {
                let rt = epochs
                    .values()
                    .find(|rt| rt.window.contains(*time))
                    .ok_or(CoreError::NoDataForRange)?;
                let bin_idx = self.locate_point_bin(rt, dims, *time)?;
                Ok(BinFetchPlan {
                    bins: BTreeSet::from([(rt.epoch_id, bin_idx)]),
                    epochs_touched: 1,
                    verified: self.verification_active(opts, rt),
                })
            }
            Predicate::Range { .. } => {
                let (t_start, t_end) = query.predicate.time_span();
                let touched: Vec<u64> = epochs
                    .values()
                    .filter(|rt| rt.window.overlaps(t_start, t_end))
                    .map(|rt| rt.epoch_id)
                    .collect();
                if touched.is_empty() {
                    return Err(CoreError::NoDataForRange);
                }
                let mut bins: BTreeSet<(u64, usize)> = BTreeSet::new();
                let mut verified = true;
                for epoch_id in &touched {
                    let rt = epochs.get_mut(epoch_id).expect("registered epoch");
                    verified &= self.verification_active(opts, rt);
                    let bin_set = self.range_bins_for_epoch(rt, query, opts)?;
                    bins.extend(bin_set.into_iter().map(|b| (*epoch_id, b)));
                }
                Ok(BinFetchPlan {
                    bins,
                    epochs_touched: touched.len(),
                    verified,
                })
            }
        }
    }

    /// The bin a point predicate's cell lands in (shared by the point
    /// execution path and the batch planner).
    fn locate_point_bin(&self, rt: &EpochRuntime, dims: &[u64], time: u64) -> Result<usize> {
        let grid = self.grid_for(rt);
        let coord = grid.locate(dims, time)?;
        let cid = rt.cell_assignment[coord.flat as usize];
        rt.bin_plan
            .bin_of_cell(cid)
            .ok_or(CoreError::CorruptMetadata)
    }

    /// The sorted, deduplicated bin set a BPB range execution fetches from
    /// one epoch, including super-bin expansion (shared by the sequential
    /// BPB path and the batch planner).
    fn range_bins_for_epoch(
        &self,
        rt: &mut EpochRuntime,
        query: &Query,
        opts: &ExecOptions,
    ) -> Result<Vec<usize>> {
        let mut bin_set = self.bins_for_range(rt, query)?;
        if opts.use_superbins {
            bin_set = self.expand_to_superbins(rt, &bin_set, opts.num_super_bins);
        }
        Ok(bin_set)
    }

    fn grid_for(&self, rt: &EpochRuntime) -> Grid {
        let key = self.enclave.epoch_key(EpochId(rt.epoch_id), 0);
        Grid::new(self.config.grid.clone(), rt.window, key.grid_prf.clone())
    }

    /// The bins covering a range query's cells (BPB trivial method).
    fn bins_for_range(&self, rt: &EpochRuntime, query: &Query) -> Result<Vec<usize>> {
        let grid = self.grid_for(rt);
        let (t_start, t_end) = query.predicate.time_span();
        let rows = grid.time_rows_for_range(t_start, t_end);
        let cells = match query.predicate.dims() {
            Some(dims) => grid.cells_for_dims(dims, &rows)?,
            None => grid.cells_for_all_dims(&rows),
        };
        let mut bins: Vec<usize> = cells
            .iter()
            .filter_map(|&flat| {
                let cid = rt.cell_assignment[flat as usize];
                rt.bin_plan.bin_of_cell(cid)
            })
            .collect();
        bins.sort_unstable();
        bins.dedup();
        Ok(bins)
    }

    fn expand_to_superbins(
        &self,
        rt: &mut EpochRuntime,
        bins: &[usize],
        num_super_bins: usize,
    ) -> Vec<usize> {
        if rt.superbin_plan.is_none() {
            rt.superbin_plan = Some(SuperBinPlan::build(
                &rt.bin_plan,
                &rt.cells_per_cell_id,
                num_super_bins,
            ));
        }
        let plan = rt.superbin_plan.as_ref().expect("just built");
        let mut expanded: Vec<usize> = bins
            .iter()
            .flat_map(|&b| plan.fetch_set_for_bin(b).to_vec())
            .collect();
        expanded.sort_unstable();
        expanded.dedup();
        expanded
    }

    /// Fetch one bin (and hash-chain-verify it when verification is
    /// active), returning the cached-or-fresh [`BinEntry`] holding the
    /// rows, their round key, and the lazily-filled decode results.
    ///
    /// Consults the decrypted-bin cache first. A warm hit replays the
    /// cached trapdoors against the store
    /// ([`EpochStore::fetch_batch_matches`]) — producing the exact
    /// `TrapdoorIssued`/`RowFetched` event sequence a cold fetch would —
    /// and replays the recorded generation counters into the shared
    /// side-channel meter, so the cache is invisible in both adversary
    /// channels (see [`crate::bin_cache`] module docs). What a hit skips is
    /// enclave-internal work only: trapdoor re-derivation, hash-chain
    /// re-verification and payload re-decryption.
    ///
    /// Takes the store handle explicitly so the parallel batch path can
    /// substitute a handle bound to a task-local observer (same stored
    /// data, buffered trace); sequential paths pass `&self.store`.
    fn fetch_bin_rows(
        &self,
        store: &EpochStore,
        rt: &EpochRuntime,
        bin_idx: usize,
        opts: &ExecOptions,
    ) -> Result<Arc<BinEntry>> {
        let round = rt.bin_rounds[bin_idx];
        let oblivious = self.oblivious_enabled(opts);
        let want_verify = self.verification_active(opts, rt);
        let cache_key: BinKey = (rt.epoch_id, bin_idx, round);

        if let Some(entry) = self.bin_cache.lookup(cache_key) {
            // An entry is usable only if it was generated under the same
            // oblivious schedule (its replayed counters must match this
            // execution's) and satisfies this execution's verification
            // demand (an unverified entry cannot vouch for a verifying
            // fetch; a verified one serves either).
            if entry.oblivious == oblivious && (entry.verified || !want_verify) {
                let start = Instant::now();
                let matched =
                    store.fetch_batch_matches(rt.epoch_id, &entry.trapdoors, &entry.rows)?;
                bump_phase(&self.phases.fetch_ns, start);
                if matched {
                    self.enclave.meter().add_snapshot(entry.gen_meter);
                    self.bin_cache.record_hit();
                    return Ok(entry);
                }
            }
            // Stale profile, or the store's answer diverged from the cached
            // rows (out-of-band rewrite or tampering): drop the entry and
            // fall through to a cold fetch, whose verification surfaces any
            // integrity violation.
            self.bin_cache.invalidate(cache_key);
        }

        let fetch_start = Instant::now();
        let key = self.enclave.epoch_key(EpochId(rt.epoch_id), round);
        let bin = &rt.bin_plan.bins[bin_idx];
        let spec = FetchSpec {
            cells: bin
                .cell_ids
                .iter()
                .map(|&cid| (cid, rt.c_tuple[cid as usize]))
                .collect(),
            fake_range: clamp_fake_range(bin.fake_range, rt.total_fakes),
        };
        // Generate against a private meter so the exact counters this
        // fetch produces can be replayed verbatim on warm hits; the shared
        // meter receives the identical totals via the snapshot below.
        let gen = SideChannelMeter::new();
        let trapdoors = if oblivious {
            generate_oblivious(
                key.as_ref(),
                &spec,
                rt.bin_plan.max_cells_per_bin(),
                rt.c_tuple.iter().copied().max().unwrap_or(0),
                rt.bin_plan.max_fakes_per_bin(),
                &gen,
            )
        } else {
            generate_plain(key.as_ref(), &spec, &gen)
        };
        let gen_meter = gen.snapshot();
        self.enclave.meter().add_snapshot(gen_meter);
        let rows = store.fetch_batch(rt.epoch_id, &trapdoors)?;
        bump_phase(&self.phases.fetch_ns, fetch_start);

        if want_verify {
            let verify_start = Instant::now();
            self.verify_bin(rt, key.as_ref(), &bin.cell_ids, &rows)?;
            bump_phase(&self.phases.verify_ns, verify_start);
        }
        self.bin_cache.record_miss();
        let entry = Arc::new(BinEntry {
            key,
            round,
            trapdoors,
            gen_meter,
            decoded: DecodedBin::new(rows.len()),
            rows,
            verified: want_verify,
            oblivious,
        });
        self.bin_cache.insert(cache_key, Arc::clone(&entry));
        Ok(entry)
    }

    /// Fetch one bin and fold its matching tuples into the accumulator.
    #[allow(clippy::too_many_arguments)]
    fn fetch_and_process_bin(
        &self,
        rt: &EpochRuntime,
        bin_idx: usize,
        query: &Query,
        opts: &ExecOptions,
        acc: &mut Accumulator,
        fetched: &mut usize,
        decrypted: &mut usize,
        memo: &mut PlanMemo,
    ) -> Result<()> {
        let entry = self.fetch_bin_rows(&self.store, rt, bin_idx, opts)?;
        *fetched += entry.rows.len();
        let (bin_acc, d) = self.process_rows(
            entry.key.as_ref(),
            rt,
            entry.round,
            query,
            opts,
            &entry.rows,
            &entry.decoded,
            memo,
        )?;
        *decrypted += d;
        acc.merge(bin_acc);
        Ok(())
    }

    /// Group fetched rows by cell-id (via the authenticated index
    /// plaintext) and verify each chain against its tag. Index keys are
    /// decrypted as one batch into a reused scratch arena — one allocation
    /// for the whole bin instead of one per row; rows whose index key fails
    /// authentication (fake tuples) come back as empty slots and are
    /// skipped, exactly as the per-row path skipped decryption failures.
    fn verify_bin(
        &self,
        rt: &EpochRuntime,
        key: &EpochKey,
        cell_ids: &[u32],
        rows: &[EncryptedRow],
    ) -> Result<()> {
        let mut scratch = DetBuffer::with_capacity(rows.len(), 24);
        key.det
            .decrypt_batch(rows.iter().map(|r| r.index_key.as_slice()), &mut scratch);
        let mut per_cell: HashMap<u32, Vec<(u32, &EncryptedRow)>> = HashMap::new();
        for (row, plain) in rows.iter().zip(scratch.iter()) {
            if let Some((cid, counter)) = plain.and_then(codec::decode_index_plain) {
                per_cell.entry(cid).or_default().push((counter, row));
            }
        }
        for &cid in cell_ids {
            let mut entries = per_cell.remove(&cid).unwrap_or_default();
            entries.sort_unstable_by_key(|(ctr, _)| *ctr);
            let ordered: Vec<&EncryptedRow> = entries.into_iter().map(|(_, r)| r).collect();
            let tag = rt
                .tags
                .get(cid as usize)
                .ok_or(CoreError::IntegrityViolation { cell_id: cid })?;
            verify_cell_chain(key, cid, &ordered, tag)?;
        }
        Ok(())
    }

    /// Filter and aggregate one bin's rows for one query. The filter plan
    /// is memoized per `(epoch, round)` in the caller-provided memo (plans
    /// depend only on the round key, the config and the query, so every bin
    /// of a round shares one plan), and per-row payload decodes go through
    /// the bin's shared [`DecodedBin`] so each row is decrypted at most
    /// once per entry lifetime regardless of how many queries visit it.
    #[allow(clippy::too_many_arguments)]
    fn process_rows(
        &self,
        key: &EpochKey,
        rt: &EpochRuntime,
        round: u64,
        query: &Query,
        opts: &ExecOptions,
        rows: &[EncryptedRow],
        decoded: &DecodedBin,
        memo: &mut PlanMemo,
    ) -> Result<(Accumulator, usize)> {
        let start = Instant::now();
        let plan: &FilterPlan = memo
            .entry((rt.epoch_id, round))
            .or_insert_with(|| build_filter_plan(key, &self.config, &query.predicate, rt.window));
        let meter = self.enclave.meter();
        let out = if self.oblivious_enabled(opts) {
            process_rows_oblivious(key, plan, &query.aggregate, rows, decoded, meter)
        } else {
            process_rows_plain(key, plan, &query.aggregate, rows, decoded, meter)
        };
        bump_phase(&self.phases.decrypt_ns, start);
        out
    }

    /// eBPB (§5.2): fetch exactly the cell-ids covering the range, padded to
    /// the worst-case ℓ-row window size.
    fn execute_ebpb(
        &self,
        rt: &mut EpochRuntime,
        query: &Query,
        opts: &ExecOptions,
        acc: &mut Accumulator,
    ) -> Result<(usize, usize)> {
        let grid = self.grid_for(rt);
        let (t_start, t_end) = query.predicate.time_span();
        let rows_needed = grid.time_rows_for_range(t_start, t_end);
        if rows_needed.is_empty() {
            return Ok((0, 0));
        }
        let cells = match query.predicate.dims() {
            Some(dims) => grid.cells_for_dims(dims, &rows_needed)?,
            None => grid.cells_for_all_dims(&rows_needed),
        };
        let mut cids: Vec<u32> = cells
            .iter()
            .map(|&flat| rt.cell_assignment[flat as usize])
            .collect();
        cids.sort_unstable();
        cids.dedup();

        let real: u64 = cids
            .iter()
            .map(|&c| u64::from(rt.c_tuple[c as usize]))
            .sum();
        let target = if query.predicate.dims().is_some() {
            self.ebpb_window_size(rt, rows_needed.len() as u64)
                .max(real)
        } else {
            real
        };
        let pad = (target - real).min(rt.total_fakes);

        // Group the needed cell-ids by their bin's re-encryption round so
        // trapdoors and filters use the right key even after §6 rewrites.
        let mut by_round: BTreeMap<u64, Vec<(u32, u32)>> = BTreeMap::new();
        for &cid in &cids {
            let round = rt.bin_plan.bin_of_cell(cid).map_or(0, |b| rt.bin_rounds[b]);
            by_round
                .entry(round)
                .or_default()
                .push((cid, rt.c_tuple[cid as usize]));
        }

        let mut fetched = 0usize;
        let mut decrypted = 0usize;
        let mut first = true;
        let mut memo = PlanMemo::new();
        for (round, cells) in by_round {
            let key = self.enclave.epoch_key(EpochId(rt.epoch_id), round);
            let spec = FetchSpec {
                cells,
                fake_range: if first { (0, pad) } else { (0, 0) },
            };
            first = false;
            let trapdoors = generate_plain(key.as_ref(), &spec, self.enclave.meter());
            let rows = self.store.fetch_batch(rt.epoch_id, &trapdoors)?;
            fetched += rows.len();
            if self.verification_active(opts, rt) {
                let cids_in_group: Vec<u32> = spec.cells.iter().map(|(c, _)| *c).collect();
                self.verify_bin(rt, key.as_ref(), &cids_in_group, &rows)?;
            }
            let decoded = DecodedBin::new(rows.len());
            let (group_acc, d) = self.process_rows(
                key.as_ref(),
                rt,
                round,
                query,
                opts,
                &rows,
                &decoded,
                &mut memo,
            )?;
            decrypted += d;
            acc.merge(group_acc);
        }
        Ok((fetched, decrypted))
    }

    /// Worst-case tuples in any ℓ consecutive time rows of any dimension
    /// column (the eBPB bin size), cached per ℓ.
    fn ebpb_window_size(&self, rt: &mut EpochRuntime, window_len: u64) -> u64 {
        if let Some(&cached) = rt.ebpb_sizes.get(&window_len) {
            return cached;
        }
        let y = self.config.grid.time_subintervals as usize;
        let len = (window_len as usize).clamp(1, y);
        let mut best = 0u64;
        let columns = rt.cell_counts.len() / y.max(1);
        for col in 0..columns {
            let col_counts = &rt.cell_counts[col * y..(col + 1) * y];
            let mut window_sum: u64 = col_counts[..len].iter().map(|&c| u64::from(c)).sum();
            best = best.max(window_sum);
            for i in len..y {
                window_sum += u64::from(col_counts[i]);
                window_sum -= u64::from(col_counts[i - len]);
                best = best.max(window_sum);
            }
        }
        rt.ebpb_sizes.insert(window_len, best);
        best
    }

    /// winSecRange (§5.3): fetch whole fixed time intervals.
    fn execute_winsec(
        &self,
        rt: &mut EpochRuntime,
        query: &Query,
        opts: &ExecOptions,
        acc: &mut Accumulator,
    ) -> Result<(usize, usize)> {
        if rt.winsec.is_none() {
            rt.winsec = Some(self.build_winsec_plan(rt));
        }
        let plan = rt.winsec.clone().expect("just built");

        let grid = self.grid_for(rt);
        let (t_start, t_end) = query.predicate.time_span();
        let rows_needed = grid.time_rows_for_range(t_start, t_end);
        if rows_needed.is_empty() {
            return Ok((0, 0));
        }
        let first_interval = rows_needed[0] / plan.rows_per_interval;
        let last_interval = rows_needed[rows_needed.len() - 1] / plan.rows_per_interval;

        // Union of the cell-ids of every interval overlapping the range.
        // Cell-ids may appear in several intervals (the PRF assignment does
        // not stratify them by time), so they are deduplicated here to avoid
        // fetching — and counting — the same tuples twice.
        let mut cids: Vec<u32> = Vec::new();
        let mut fake_budget = 0u64;
        for interval_idx in first_interval..=last_interval {
            if let Some(interval) = plan.intervals.get(interval_idx as usize) {
                cids.extend(interval.cells.iter().map(|(c, _)| *c));
                fake_budget += interval.fake_range.1 - interval.fake_range.0;
            }
        }
        cids.sort_unstable();
        cids.dedup();

        // Group by round like eBPB so trapdoors use the right key after §6
        // rewrites.
        let mut by_round: BTreeMap<u64, Vec<(u32, u32)>> = BTreeMap::new();
        for &cid in &cids {
            let round = rt.bin_plan.bin_of_cell(cid).map_or(0, |b| rt.bin_rounds[b]);
            by_round
                .entry(round)
                .or_default()
                .push((cid, rt.c_tuple[cid as usize]));
        }

        let mut fetched = 0usize;
        let mut decrypted = 0usize;
        let mut first = true;
        let mut memo = PlanMemo::new();
        for (round, cells) in by_round {
            let key = self.enclave.epoch_key(EpochId(rt.epoch_id), round);
            let spec = FetchSpec {
                cells,
                fake_range: if first {
                    (0, fake_budget.min(rt.total_fakes))
                } else {
                    (0, 0)
                },
            };
            first = false;
            let trapdoors = generate_plain(key.as_ref(), &spec, self.enclave.meter());
            let rows = self.store.fetch_batch(rt.epoch_id, &trapdoors)?;
            fetched += rows.len();
            if self.verification_active(opts, rt) {
                let cids_in_group: Vec<u32> = spec.cells.iter().map(|(c, _)| *c).collect();
                self.verify_bin(rt, key.as_ref(), &cids_in_group, &rows)?;
            }
            let decoded = DecodedBin::new(rows.len());
            let (group_acc, d) = self.process_rows(
                key.as_ref(),
                rt,
                round,
                query,
                opts,
                &rows,
                &decoded,
                &mut memo,
            )?;
            decrypted += d;
            acc.merge(group_acc);
        }
        Ok((fetched, decrypted))
    }

    fn build_winsec_plan(&self, rt: &EpochRuntime) -> WinSecPlan {
        let y = self.config.grid.time_subintervals;
        let lambda = self.config.winsec_rows_per_interval.max(1).min(y);
        let num_intervals = y.div_ceil(lambda);

        // Every interval lists every cell-id that has at least one grid cell
        // in the interval's time rows. A cell-id may appear in several
        // intervals (the PRF cell-id assignment is not time-stratified);
        // retrieving an interval therefore retrieves every tuple of every
        // cell-id that *could* hold tuples from the interval, which is the
        // superset the volume-hiding argument needs. Queries spanning
        // multiple intervals deduplicate the union before fetching.
        let mut interval_cells: Vec<Vec<(u32, u32)>> = vec![Vec::new(); num_intervals as usize];
        let mut seen: Vec<Vec<bool>> = vec![vec![false; rt.c_tuple.len()]; num_intervals as usize];
        for (flat, &cid) in rt.cell_assignment.iter().enumerate() {
            let time_row = (flat as u64) % y;
            let interval = (time_row / lambda) as usize;
            if !seen[interval][cid as usize] {
                seen[interval][cid as usize] = true;
                interval_cells[interval].push((cid, rt.c_tuple[cid as usize]));
            }
        }

        let reals: Vec<u64> = interval_cells
            .iter()
            .map(|cells| cells.iter().map(|(_, c)| u64::from(*c)).sum())
            .collect();
        let interval_size = reals.iter().copied().max().unwrap_or(0);

        let mut intervals = Vec::with_capacity(num_intervals as usize);
        let mut next_fake = 0u64;
        for (cells, real) in interval_cells.into_iter().zip(reals) {
            let need = (interval_size - real).min(rt.total_fakes.saturating_sub(next_fake));
            intervals.push(WinSecInterval {
                cells,
                real,
                fake_range: (next_fake, next_fake + need),
            });
            next_fake += need;
        }
        WinSecPlan {
            intervals,
            interval_size,
            rows_per_interval: lambda,
        }
    }

    /// Re-encrypt a fetched bin under the next round key and write it back
    /// (§6), bumping the bin's round counter and refreshing its tags.
    fn reencrypt_and_rewrite_bin(&self, rt: &mut EpochRuntime, bin_idx: usize) -> Result<()> {
        let old_round = rt.bin_rounds[bin_idx];
        let old_key = self.enclave.epoch_key(EpochId(rt.epoch_id), old_round);
        let new_key = self.enclave.epoch_key(EpochId(rt.epoch_id), old_round + 1);
        let bin = &rt.bin_plan.bins[bin_idx];

        let spec = FetchSpec {
            cells: bin
                .cell_ids
                .iter()
                .map(|&cid| (cid, rt.c_tuple[cid as usize]))
                .collect(),
            fake_range: clamp_fake_range(bin.fake_range, rt.total_fakes),
        };
        let trapdoors = generate_plain(old_key.as_ref(), &spec, self.enclave.meter());
        let rows = self.store.fetch_batch(rt.epoch_id, &trapdoors)?;

        let mut rng = self.rng.lock();
        let out = dynamic::reencrypt_bin(
            old_key.as_ref(),
            new_key.as_ref(),
            &rows,
            &bin.cell_ids,
            self.config.grid.num_cell_ids as usize,
            &mut *rng,
        )?;
        drop(rng);

        // Rows and refreshed tags land in one store commit: the durable
        // backend persists a single new segment generation per bin rewrite.
        let updates: Vec<(usize, Vec<u8>)> = if rt.tags.is_empty() {
            Vec::new()
        } else {
            out.new_tags
                .iter()
                .map(|(cid, tag)| (*cid as usize, tag.clone()))
                .collect()
        };
        self.store
            .rewrite_bin(rt.epoch_id, out.replacements, updates)?;
        if !rt.tags.is_empty() {
            for (cid, tag) in &out.new_tags {
                rt.tags[*cid as usize] = tag.clone();
            }
        }
        rt.bin_rounds[bin_idx] = old_round + 1;
        // The new round key changes the cache key, so queries after the
        // rewrite miss naturally; drop the superseded entry eagerly anyway
        // to free enclave memory.
        self.bin_cache.invalidate((rt.epoch_id, bin_idx, old_round));
        Ok(())
    }
}

fn clamp_fake_range(range: (u64, u64), total_fakes: u64) -> (u64, u64) {
    (range.0.min(total_fakes), range.1.min(total_fakes))
}

/// Convenience facade bundling the data provider, the service-provider
/// store and the enclave-side query engine — the full deployment of
/// Figure 1 of the paper in one value. Examples and benchmarks use this;
/// library users who need to place the three roles on different machines
/// can use [`DataProvider`], [`concealer_storage::EpochStore`] and
/// [`QueryEngine`] directly.
///
/// Queries go through [`ConcealerSystem::session`]:
///
/// ```text
/// let session = system.session(&user);
/// let answer = session.execute(&Query::count().at_dims([3]).between(0, 1799))?;
/// ```
pub struct ConcealerSystem {
    provider: DataProvider,
    store: EpochStore,
    engine: QueryEngine,
    registry: UserRegistry,
    default_user: Option<UserHandle>,
}

impl std::fmt::Debug for ConcealerSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcealerSystem")
            .field("epochs", &self.engine.registered_epochs().len())
            .field("users", &self.registry.len())
            .finish_non_exhaustive()
    }
}

impl ConcealerSystem {
    /// Set up a full deployment: generate the shared secret, provision the
    /// enclave, and wire the store to it.
    #[must_use]
    pub fn new<R: RngCore>(config: SystemConfig, rng: &mut R) -> Self {
        let master = MasterKey::generate(rng);
        Self::with_master(config, master, rng.gen())
    }

    /// Set up a deployment with an explicit master key and engine RNG seed
    /// (useful for reproducible tests and benchmarks).
    ///
    /// Uses the default in-memory store; to place the sealed segments on a
    /// different [`concealer_storage::StorageBackend`] (e.g. the durable
    /// [`concealer_storage::DiskEpochStore`]), use [`crate::SystemBuilder`].
    #[must_use]
    pub fn with_master(config: SystemConfig, master: MasterKey, engine_seed: u64) -> Self {
        Self::assemble(config, master, engine_seed, EpochStore::new())
            .expect("an empty in-memory store has no epochs to re-register")
    }

    /// Wire a deployment around an existing store, re-registering with the
    /// engine every epoch the store already holds (a reopened durable
    /// backend). Registration decrypts each epoch's metadata, so it fails
    /// with [`CoreError::CorruptMetadata`] when `master` does not match the
    /// key the epochs were sealed under.
    pub(crate) fn assemble(
        config: SystemConfig,
        master: MasterKey,
        engine_seed: u64,
        store: EpochStore,
    ) -> Result<Self> {
        let provider = DataProvider::new(master.clone(), config.clone());
        let enclave_config = if config.oblivious {
            EnclaveConfig::oblivious()
        } else {
            EnclaveConfig::default()
        };
        let enclave = Enclave::provision(master, UserRegistry::new(), enclave_config);
        let engine = QueryEngine::new(config, enclave, store.clone(), engine_seed);
        for epoch_id in store.epoch_ids() {
            // The §6 protocol re-encrypts bins under per-bin round keys whose
            // counters are enclave-resident state; registration would reset
            // them to round 0 and the next query on a rewritten bin would
            // issue trapdoors that miss every row (surfacing as a spurious
            // integrity violation, or a wrong answer with verification off).
            // Fail at build time instead, where the remedy is actionable.
            if store.rewrite_count(epoch_id)? > 0 {
                return Err(CoreError::InvalidConfig {
                    reason: format!(
                        "epoch {epoch_id} was rewritten by the forward-private (§6) \
                         protocol; its round counters are enclave state and do not \
                         survive a restart — re-ingest the epoch"
                    ),
                });
            }
            // Epochs carrying a key-vault entry must unwrap under this
            // master at the recorded generation — a mismatch means the
            // store was sealed under a different master (or a different
            // lifecycle history) and would fail at decrypt time anyway;
            // refuse here, where the remedy is actionable. Epochs without
            // an entry predate the vault and are validated by metadata
            // registration alone, as before.
            if let Some((generation, blob)) = store.backend().sealed_key(epoch_id) {
                if engine
                    .enclave()
                    .master_key_for_data_provider()
                    .unwrap_epoch_seal(generation, epoch_id, &blob)
                    .is_none()
                {
                    return Err(CoreError::CorruptMetadata);
                }
            }
            engine.register_epoch(epoch_id)?;
        }
        Ok(ConcealerSystem {
            provider,
            store,
            engine,
            registry: UserRegistry::new(),
            default_user: None,
        })
    }

    /// Register a user with the data provider; the updated registry is
    /// pushed to the enclave, and the credential is returned to the user.
    /// The first registered user becomes the system's default user (used by
    /// the [`crate::SecureIndex`] impl).
    pub fn register_user(
        &mut self,
        user_id: u64,
        devices: Vec<u64>,
        aggregate: bool,
    ) -> UserHandle {
        let credential =
            self.registry
                .register(self.provider.master(), UserId(user_id), devices, aggregate);
        self.engine.enclave().update_registry(self.registry.clone());
        let handle = UserHandle {
            user_id: UserId(user_id),
            credential,
        };
        if self.default_user.is_none() {
            self.default_user = Some(handle.clone());
        }
        handle
    }

    /// The system's default user: the first user registered, if any.
    #[must_use]
    pub fn default_user(&self) -> Option<&UserHandle> {
        self.default_user.as_ref()
    }

    /// Open a query session for a registered user. The session carries the
    /// user's handle plus default [`ExecOptions`] and is the primary way to
    /// execute queries (see [`Session`]).
    #[must_use]
    pub fn session(&self, user: &UserHandle) -> Session<'_> {
        Session::new(self, user.clone())
    }

    /// Encrypt and ingest one epoch of records (Phase 1 of the paper).
    ///
    /// Takes `&self`: ingest only touches the (sharded, internally locked)
    /// store and the engine's epoch registry, so epochs can be ingested
    /// concurrently with query execution — late epochs land while earlier
    /// ones keep serving.
    pub fn ingest_epoch<R: RngCore>(
        &self,
        epoch_start: u64,
        records: &[Record],
        rng: &mut R,
    ) -> Result<EpochStats> {
        let shipment = self.provider.encrypt_epoch(epoch_start, records, rng)?;
        let stats = shipment.stats.clone();
        self.store
            .ingest_epoch(shipment.epoch_id, shipment.rows, shipment.metadata)?;
        // Record the epoch's wrapped seal secret in the store's key vault
        // under the current master generation, so reopen can prove the
        // epoch is readable under this master and rotation has an entry
        // to re-wrap. A no-op on backends without lifecycle state.
        let backend = self.store.backend();
        let generation = backend.key_generation();
        backend.seal_key(
            epoch_start,
            generation,
            self.provider
                .master()
                .wrap_epoch_seal(generation, epoch_start),
        )?;
        self.engine.register_epoch(epoch_start)?;
        Ok(stats)
    }

    /// Pull in and register epochs another process committed to the shared
    /// durable store since the last look (the replica's refresh tick; see
    /// [`concealer_storage::StorageBackend::refresh`]). Returns the epoch
    /// ids registered. Takes `&self` for the same reason
    /// [`ConcealerSystem::ingest_epoch`] does: late epochs land while
    /// earlier ones keep serving.
    ///
    /// Epochs the writer has rewritten under the forward-private (§6)
    /// protocol are *not* registered: their per-bin round counters are the
    /// writer's enclave state and do not survive the hop (the same rule
    /// that makes a restarted system refuse them — see the build-time
    /// check in `assemble`).
    pub fn refresh_epochs(&self) -> Result<Vec<u64>> {
        let mut registered = Vec::new();
        for epoch_id in self.store.refresh()? {
            if self.store.rewrite_count(epoch_id)? > 0 {
                continue;
            }
            self.engine.register_epoch(epoch_id)?;
            registered.push(epoch_id);
        }
        Ok(registered)
    }

    /// Promote this system's store from read-only replica to writer (a
    /// reopen of the durable root — no key material moves; see
    /// [`concealer_storage::StorageBackend::promote`]), then register
    /// anything the recovery pass surfaced that the refresh loop had not
    /// absorbed yet. Idempotent on a system that is already the writer.
    /// Returns the epoch ids newly registered.
    ///
    /// Epochs the dead writer rewrote under the §6 protocol do not survive
    /// the failover (their round counters were the dead writer's enclave
    /// state — the restart rule); they are skipped here and must be
    /// re-ingested, exactly as after a single-node restart.
    pub fn promote_to_writer(&self) -> Result<Vec<u64>> {
        self.store.promote()?;
        let known: std::collections::BTreeSet<u64> =
            self.engine.registered_epochs().into_iter().collect();
        let mut registered = Vec::new();
        for epoch_id in self.store.epoch_ids() {
            if known.contains(&epoch_id) || self.store.rewrite_count(epoch_id)? > 0 {
                continue;
            }
            self.engine.register_epoch(epoch_id)?;
            registered.push(epoch_id);
        }
        Ok(registered)
    }

    /// Whether this system's store is a read-only replica (ingest and §6
    /// rewrites are refused until [`ConcealerSystem::promote_to_writer`]).
    #[must_use]
    pub fn store_read_only(&self) -> bool {
        self.store.read_only()
    }

    /// The master-key generation most recently begun on this system's
    /// store (`0` until the first rotation, and always `0` on backends
    /// without lifecycle state).
    #[must_use]
    pub fn key_generation(&self) -> u64 {
        self.store.backend().key_generation()
    }

    /// Number of key-vault entries still wrapped under an older master
    /// generation — `0` when no rotation is in flight.
    #[must_use]
    pub fn rotation_pending(&self) -> usize {
        self.store.backend().rotation_pending()
    }

    /// Rotate the master-key generation online: durably begin generation
    /// `current + 1`, then re-wrap every vault entry in bounded batches.
    /// Returns `(new_generation, entries_rewrapped)`.
    ///
    /// The rotation touches only the manifest's key vault — never the
    /// epochs, the enclave's derived keys, or anything on the query path
    /// (fetches read the resident cache) — so queries running concurrently
    /// with a rotation return bit-identical answers and traces. A crash
    /// mid-rotation is safe: the generation counter is bumped before any
    /// entry moves, so reopen sees a legal resumable state (see
    /// [`concealer_storage::StorageBackend::begin_key_rotation`]) and
    /// [`ConcealerSystem::resume_key_rotation`] finishes the job.
    pub fn rotate_master_generation(&self) -> Result<(u64, usize)> {
        let new_generation = self.store.backend().key_generation() + 1;
        self.store.backend().begin_key_rotation(new_generation)?;
        let rewrapped = self.resume_key_rotation()?;
        Ok((new_generation, rewrapped))
    }

    /// Finish a rotation another process (or a crashed run of this one)
    /// began: re-wrap every vault entry still behind the current key
    /// generation, in bounded batches. Returns how many entries moved.
    /// Idempotent; a store with no rotation in flight returns `0`.
    pub fn resume_key_rotation(&self) -> Result<usize> {
        /// Entries per batch: small enough that each durable manifest
        /// commit is quick, large enough to finish promptly.
        const REWRAP_BATCH: usize = 8;
        let backend = self.store.backend();
        let master = self.provider.master();
        let mut total = 0;
        loop {
            let moved = backend.rewrap_keys(
                &mut |epoch_id, generation, _old_blob| {
                    Ok(master.wrap_epoch_seal(generation, epoch_id))
                },
                REWRAP_BATCH,
            )?;
            if moved == 0 {
                return Ok(total);
            }
            total += moved;
        }
    }

    /// The adversary's view of the storage layer.
    #[must_use]
    pub fn observer(&self) -> &AccessObserver {
        self.store.observer()
    }

    /// The enclave's side-channel meter.
    #[must_use]
    pub fn meter(&self) -> &SideChannelMeter {
        self.engine.meter()
    }

    /// Statistics of the enclave-side decrypted-bin cache.
    #[must_use]
    pub fn bin_cache_stats(&self) -> BinCacheStats {
        self.engine.bin_cache_stats()
    }

    /// Resize the enclave-side decrypted-bin cache (`0` disables it). See
    /// [`QueryEngine::set_bin_cache_capacity`].
    pub fn set_bin_cache_capacity(&self, capacity: usize) {
        self.engine.set_bin_cache_capacity(capacity);
    }

    /// Snapshot of the engine's per-phase wall-clock accumulators.
    #[must_use]
    pub fn phase_breakdown(&self) -> PhaseBreakdown {
        self.engine.phase_breakdown()
    }

    /// Reset the engine's per-phase wall-clock accumulators.
    pub fn reset_phases(&self) {
        self.engine.reset_phases();
    }

    /// The service-provider store.
    #[must_use]
    pub fn store(&self) -> &EpochStore {
        &self.store
    }

    /// The enclave-side query engine.
    #[must_use]
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// The data provider.
    #[must_use]
    pub fn provider(&self) -> &DataProvider {
        &self.provider
    }
}

/// Individualized predicates (pinning an observation/device id) need
/// individualized authorization; everything else runs under the aggregate
/// scope.
pub(crate) fn scope_for_query(query: &Query) -> QueryScope {
    match query.predicate.observation() {
        Some(device_id) => QueryScope::Individualized { device_id },
        None => QueryScope::Aggregate,
    }
}

// Re-export for the facade's users.
pub use concealer_storage::EpochStore as Store;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FakeTupleStrategy, GridShape};
    use crate::query::AnswerValue;

    fn test_config(oblivious: bool) -> SystemConfig {
        SystemConfig {
            grid: GridShape {
                dim_buckets: vec![6],
                time_subintervals: 8,
                num_cell_ids: 16,
            },
            epoch_duration: 3600,
            time_granularity: 60,
            fake_strategy: FakeTupleStrategy::SimulateBins,
            verify_integrity: true,
            oblivious,
            winsec_rows_per_interval: 2,
        }
    }

    /// Deterministic workload: 8 locations, device ids 100-104, one record
    /// every 9 seconds.
    fn workload(epoch_start: u64, n: u64) -> Vec<Record> {
        (0..n)
            .map(|i| Record::spatial(i % 8, epoch_start + (i * 9) % 3600, 100 + i % 5))
            .collect()
    }

    /// Count records matching a predicate in cleartext (ground truth).
    fn cleartext_count(
        records: &[Record],
        dims: Option<&[u64]>,
        obs: Option<u64>,
        t: (u64, u64),
    ) -> u64 {
        records
            .iter()
            .filter(|r| {
                dims.is_none_or(|d| r.dims == d)
                    && obs.is_none_or(|o| r.observation() == Some(o))
                    && r.time >= t.0
                    && r.time <= t.1
            })
            .count() as u64
    }

    /// On single-core hosts the engine (correctly) caps the worker count
    /// and runs parallel batches sequentially; tests of the pool machinery
    /// force the requested count so it is exercised everywhere.
    fn force_threads() {
        std::env::set_var("CONCEALER_FORCE_THREADS", "1");
    }

    fn setup(oblivious: bool) -> (ConcealerSystem, UserHandle, Vec<Record>) {
        let mut rng = StdRng::seed_from_u64(99);
        let mut system = ConcealerSystem::new(test_config(oblivious), &mut rng);
        let user = system.register_user(1, vec![100, 101, 102, 103, 104], true);
        let records = workload(0, 400);
        system.ingest_epoch(0, &records, &mut rng).unwrap();
        (system, user, records)
    }

    #[test]
    fn point_query_count_matches_cleartext() {
        let (system, user, records) = setup(false);
        // Pick an existing record's (location, time).
        let target = &records[37];
        let query = Query::count().at_dims(target.dims.clone()).at(target.time);
        let answer = system.session(&user).execute(&query).unwrap();
        // Point filter tokens cover the whole granule the target falls in.
        let g = 60;
        let granule_start = (target.time / g) * g;
        let expected = cleartext_count(
            &records,
            Some(&target.dims),
            None,
            (granule_start, granule_start + g - 1),
        );
        assert_eq!(answer.value, AnswerValue::Count(expected));
        assert!(answer.verified);
        assert!(answer.rows_fetched > 0);
    }

    #[test]
    fn range_count_matches_cleartext_all_methods() {
        let (system, user, records) = setup(false);
        let session = system.session(&user);
        for method in [
            RangeMethod::Bpb,
            RangeMethod::Ebpb,
            RangeMethod::WinSecRange,
        ] {
            let query = Query::count().at_dims([3]).between(0, 1799);
            let answer = session
                .execute_with(&query, ExecOptions::with_method(method))
                .unwrap();
            let expected = cleartext_count(&records, Some(&[3]), None, (0, 1799));
            assert_eq!(answer.value, AnswerValue::Count(expected), "{method:?}");
        }
    }

    #[test]
    fn oblivious_engine_matches_plain_engine() {
        let (plain_sys, plain_user, records) = setup(false);
        let (obliv_sys, obliv_user, _) = setup(true);
        let query = Query::count().at_dims([5]).between(600, 2399);
        let a = plain_sys.session(&plain_user).execute(&query).unwrap();
        let b = obliv_sys.session(&obliv_user).execute(&query).unwrap();
        assert_eq!(a.value, b.value);
        let expected = cleartext_count(&records, Some(&[5]), None, (600, 2399));
        assert_eq!(a.value, AnswerValue::Count(expected));
    }

    #[test]
    fn oblivious_override_matches_deployment_default() {
        // Same master key, one plain deployment: forcing oblivious on via
        // ExecOptions must return the same answers as the plain path.
        let (system, user, records) = setup(false);
        let session = system.session(&user);
        let query = Query::count().at_dims([2]).between(0, 3599);
        let plain = session.execute(&query).unwrap();
        let forced = session
            .execute_with(
                &query,
                ExecOptions {
                    oblivious: Some(true),
                    ..ExecOptions::default()
                },
            )
            .unwrap();
        assert_eq!(plain.value, forced.value);
        let expected = cleartext_count(&records, Some(&[2]), None, (0, 3599));
        assert_eq!(plain.value, AnswerValue::Count(expected));
    }

    #[test]
    fn verification_toggle_disables_verified_flag() {
        let (system, user, records) = setup(false);
        let session = system.session(&user);
        let target = &records[10];
        let query = Query::count().at_dims(target.dims.clone()).at(target.time);
        let on = session.execute(&query).unwrap();
        assert!(on.verified);
        let off = session
            .execute_with(
                &query,
                ExecOptions {
                    verify: false,
                    ..ExecOptions::default()
                },
            )
            .unwrap();
        assert!(!off.verified);
        assert_eq!(on.value, off.value);
    }

    #[test]
    fn observation_query_requires_owned_device() {
        let (mut system, _user, _records) = setup(false);
        let stranger = system.register_user(2, vec![999], true);
        let query = Query::collect_rows().observing(100).between(0, 3599);
        let err = system.session(&stranger).execute(&query).unwrap_err();
        assert!(matches!(err, CoreError::Enclave(_)));
    }

    #[test]
    fn observation_query_counts_device_sightings() {
        let (system, user, records) = setup(false);
        let query = Query::count().observing(102).between(0, 3599);
        let answer = system
            .session(&user)
            .execute_with(&query, ExecOptions::with_method(RangeMethod::Bpb))
            .unwrap();
        let expected = cleartext_count(&records, None, Some(102), (0, 3599));
        assert_eq!(answer.value, AnswerValue::Count(expected));
    }

    #[test]
    fn top_k_locations_query() {
        let (system, user, records) = setup(false);
        let query = Query::top_k_locations(3).between(0, 3599);
        let answer = system
            .session(&user)
            .execute_with(&query, ExecOptions::with_method(RangeMethod::Bpb))
            .unwrap();
        // Ground truth top-3.
        let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
        for r in &records {
            *counts.entry(r.dims[0]).or_insert(0) += 1;
        }
        let mut pairs: Vec<(u64, u64)> = counts.into_iter().collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(3);
        assert_eq!(answer.value, AnswerValue::LocationCounts(pairs));
    }

    #[test]
    fn volume_hiding_point_queries_fetch_identical_row_counts() {
        let (system, user, records) = setup(false);
        let session = system.session(&user);
        let targets: Vec<(Vec<u64>, u64)> = vec![
            (records[3].dims.clone(), records[3].time),
            (records[200].dims.clone(), records[200].time),
            (vec![7], 3500), // likely sparse cell
        ];
        let mut sizes = Vec::new();
        for (dims, time) in targets {
            let query = Query::count().at_dims(dims).at(time);
            let answer = session.execute(&query).unwrap();
            sizes.push(answer.rows_fetched);
        }
        assert_eq!(sizes[0], sizes[1]);
        assert_eq!(sizes[1], sizes[2], "every point query fetches one full bin");
        // And the adversary's trace shows identical per-query fetch counts.
        let summaries = system.observer().per_query_summaries();
        let fetch_counts: Vec<usize> = summaries.iter().map(|s| s.rows_fetched).collect();
        assert!(
            fetch_counts.windows(2).all(|w| w[0] == w[1]),
            "{fetch_counts:?}"
        );
    }

    #[test]
    fn query_outside_ingested_data_errors() {
        let (system, user, _) = setup(false);
        let query = Query::count().at_dims([1]).at(999_999);
        assert!(matches!(
            system.session(&user).execute(&query),
            Err(CoreError::NoDataForRange)
        ));
    }

    #[test]
    fn tampering_is_detected_at_query_time() {
        let (system, user, records) = setup(false);
        // The adversary (service provider) flips a payload byte in every
        // stored row. Tampering a single arbitrary row would make the test
        // depend on whether that row happens to be real or a volume-hiding
        // fake (fakes carry no data, so their payloads are covered by no
        // hash chain); hitting all rows guarantees a covered victim.
        let epoch_rows = system.store().full_scan(0).unwrap();
        let rewrites: Vec<_> = epoch_rows
            .iter()
            .map(|row| {
                let mut tampered = row.clone();
                tampered.payload[5] ^= 0x01;
                (row.index_key.clone(), tampered)
            })
            .collect();
        system.store().rewrite_rows(0, rewrites).unwrap();

        // Sweep queries until one hits the tampered row's bin.
        let session = system.session(&user);
        let mut detected = false;
        for r in records.iter().step_by(7) {
            let query = Query::count().at_dims(r.dims.clone()).at(r.time);
            match session.execute(&query) {
                Err(CoreError::IntegrityViolation { .. }) => {
                    detected = true;
                    break;
                }
                Ok(_) | Err(_) => continue,
            }
        }
        assert!(detected, "tampering must surface as an integrity violation");
    }

    #[test]
    fn multi_epoch_range_query_spans_epochs() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut system = ConcealerSystem::new(test_config(false), &mut rng);
        let user = system.register_user(1, vec![], true);
        let r0 = workload(0, 200);
        let r1 = workload(3600, 200);
        system.ingest_epoch(0, &r0, &mut rng).unwrap();
        system.ingest_epoch(3600, &r1, &mut rng).unwrap();

        let query = Query::count().at_dims([2]).between(1800, 5399);
        let answer = system
            .session(&user)
            .execute_with(&query, ExecOptions::with_method(RangeMethod::Bpb))
            .unwrap();
        let mut all = r0;
        all.extend(r1);
        let expected = cleartext_count(&all, Some(&[2]), None, (1800, 5399));
        assert_eq!(answer.value, AnswerValue::Count(expected));
        assert_eq!(answer.epochs_touched, 2);
    }

    #[test]
    fn forward_private_query_reencrypts_and_stays_correct() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut system = ConcealerSystem::new(test_config(false), &mut rng);
        let user = system.register_user(1, vec![], true);
        let r0 = workload(0, 150);
        let r1 = workload(3600, 150);
        system.ingest_epoch(0, &r0, &mut rng).unwrap();
        system.ingest_epoch(3600, &r1, &mut rng).unwrap();

        let query = Query::count().at_dims([4]).between(0, 7199);
        let opts = ExecOptions {
            method: RangeMethod::Bpb,
            forward_private: true,
            ..ExecOptions::default()
        };
        let mut all = r0;
        all.extend(r1);
        let expected = cleartext_count(&all, Some(&[4]), None, (0, 7199));

        // Run the same query several times: answers stay correct even though
        // the underlying rows are re-encrypted after every execution.
        let session = system.session(&user).with_options(opts);
        for i in 0..3 {
            let answer = session.execute(&query).unwrap();
            assert_eq!(answer.value, AnswerValue::Count(expected), "iteration {i}");
        }
        // The store has seen rewrites.
        assert!(system.store().rewrite_count(0).unwrap() > 0);
        assert!(system.store().rewrite_count(3600).unwrap() > 0);
    }

    #[test]
    fn superbins_fetch_more_but_answer_identically() {
        let (system, user, records) = setup(false);
        let session = system.session(&user);
        let query = Query::count().at_dims([1]).between(0, 899);
        let plain = session
            .execute_with(&query, ExecOptions::with_method(RangeMethod::Bpb))
            .unwrap();
        let with_super = session
            .execute_with(
                &query,
                ExecOptions {
                    method: RangeMethod::Bpb,
                    use_superbins: true,
                    num_super_bins: 2,
                    ..ExecOptions::default()
                },
            )
            .unwrap();
        assert_eq!(plain.value, with_super.value);
        assert!(with_super.rows_fetched >= plain.rows_fetched);
        let expected = cleartext_count(&records, Some(&[1]), None, (0, 899));
        assert_eq!(plain.value, AnswerValue::Count(expected));
    }

    #[test]
    fn sum_min_max_average_over_payload() {
        let (system, user, records) = setup(false);
        let matching: Vec<u64> = records
            .iter()
            .filter(|r| r.dims == [0])
            .map(|r| r.payload[0])
            .collect();
        let sum: u64 = matching.iter().sum();
        let min = matching.iter().copied().min();
        let max = matching.iter().copied().max();

        let session = system.session(&user);
        let run = |builder: crate::query::QueryBuilder| {
            session
                .execute_with(
                    &builder.at_dims([0]).between(0, 3599),
                    ExecOptions::with_method(RangeMethod::Ebpb),
                )
                .unwrap()
                .value
        };
        assert_eq!(run(Query::sum(0)), AnswerValue::Number(Some(sum)));
        assert_eq!(run(Query::min(0)), AnswerValue::Number(min));
        assert_eq!(run(Query::max(0)), AnswerValue::Number(max));
        match run(Query::average(0)) {
            AnswerValue::Ratio(Some(avg)) => {
                assert!((avg - sum as f64 / matching.len() as f64).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// The standard 4-query mix used by the parallel-equivalence tests.
    fn parallel_test_queries(records: &[Record]) -> Vec<Query> {
        vec![
            Query::count().at_dims([1]).between(0, 899),
            Query::sum(0).at_dims([2]).between(0, 1799),
            Query::count()
                .at_dims(records[5].dims.clone())
                .at(records[5].time),
            Query::collect_rows().at_dims([3]).between(0, 3599),
        ]
    }

    #[test]
    fn parallel_batch_matches_sequential_answers_and_trace() {
        force_threads();
        let (system, user, records) = setup(false);
        let queries = parallel_test_queries(&records);
        let session = system
            .session(&user)
            .with_options(ExecOptions::with_method(RangeMethod::Bpb));

        system.observer().reset();
        let sequential: Vec<QueryAnswer> = session
            .execute_batch(&queries)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        let sequential_trace = system.observer().take_events();

        for threads in [2usize, 4, 8] {
            let par_session = system
                .session(&user)
                .with_options(ExecOptions::with_method(RangeMethod::Bpb).with_parallelism(threads));
            system.observer().reset();
            let parallel: Vec<QueryAnswer> = par_session
                .execute_batch(&queries)
                .into_iter()
                .map(|r| r.unwrap())
                .collect();
            let parallel_trace = system.observer().take_events();
            assert_eq!(parallel, sequential, "answers at parallelism={threads}");
            assert_eq!(
                parallel_trace, sequential_trace,
                "event-level trace at parallelism={threads}"
            );
        }
    }

    #[test]
    fn par_execute_batch_matches_execute_batch() {
        force_threads();
        let (system, user, records) = setup(false);
        let queries = parallel_test_queries(&records);
        let session = system
            .session(&user)
            .with_options(ExecOptions::with_method(RangeMethod::Bpb));
        let sequential: Vec<Result<QueryAnswer>> = session.execute_batch(&queries);
        let parallel: Vec<Result<QueryAnswer>> = session.par_execute_batch(&queries);
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.as_ref().unwrap(), p.as_ref().unwrap());
        }
    }

    #[test]
    fn parallel_batch_surfaces_per_query_errors_like_sequential() {
        force_threads();
        let (system, user, _) = setup(false);
        let queries = vec![
            Query::count().at_dims([1]).between(0, 899),
            Query::count().at_dims([1]).at(999_999), // outside any epoch
        ];
        let session = system
            .session(&user)
            .with_options(ExecOptions::with_method(RangeMethod::Bpb).with_parallelism(4));
        let results = session.execute_batch(&queries);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(CoreError::NoDataForRange)));
    }

    #[test]
    fn parallel_batch_reports_integrity_violations_deterministically() {
        // Tamper with every stored row, then run the same batch sequentially
        // and in parallel: both must fail the same queries with an
        // integrity violation (the per-query error is chosen by ascending
        // bin order, not thread timing).
        force_threads();
        let (seq_sys, seq_user, records) = setup(false);
        let (par_sys, par_user, _) = setup(false);
        for system in [&seq_sys, &par_sys] {
            let epoch_rows = system.store().full_scan(0).unwrap();
            let rewrites: Vec<_> = epoch_rows
                .iter()
                .map(|row| {
                    let mut tampered = row.clone();
                    tampered.payload[5] ^= 0x01;
                    (row.index_key.clone(), tampered)
                })
                .collect();
            system.store().rewrite_rows(0, rewrites).unwrap();
        }
        let queries = parallel_test_queries(&records);
        let sequential = seq_sys
            .session(&seq_user)
            .with_options(ExecOptions::with_method(RangeMethod::Bpb))
            .execute_batch(&queries);
        let parallel = par_sys
            .session(&par_user)
            .with_options(ExecOptions::with_method(RangeMethod::Bpb).with_parallelism(4))
            .execute_batch(&queries);
        // Both deployments share the same master key per `setup` seed, so
        // the outcomes must agree query by query.
        for (i, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
            match (s, p) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "query {i}"),
                (Err(a), Err(b)) => {
                    assert_eq!(format!("{a:?}"), format!("{b:?}"), "query {i}");
                }
                other => panic!("query {i} diverged: {other:?}"),
            }
        }
        assert!(
            sequential.iter().any(Result::is_err),
            "tampering must surface in at least one query"
        );
    }

    #[test]
    fn plan_stats_exposes_winsec_intervals() {
        let (system, user, _) = setup(false);
        let stats = system.engine().plan_stats(0).unwrap();
        assert_eq!(stats.epoch_id, 0);
        assert!(stats.num_bins > 0);
        assert!(stats.bin_size > 0);
        // 8 time rows at λ=2 → 4 intervals, each padded to the common size.
        assert_eq!(stats.winsec.num_intervals, 4);
        assert_eq!(stats.winsec.rows_per_interval, 2);
        assert_eq!(stats.winsec.real_tuples_per_interval.len(), 4);
        assert!(
            stats
                .winsec
                .real_tuples_per_interval
                .iter()
                .all(|&r| r <= stats.winsec.interval_size),
            "no interval may exceed the common interval size"
        );
        // The winSecRange execution path agrees with the diagnostics: a
        // whole-epoch query fetches at most every interval's worth of rows.
        let answer = system
            .session(&user)
            .execute_with(
                &Query::count().at_dims([0]).between(0, 3599),
                ExecOptions::with_method(RangeMethod::WinSecRange),
            )
            .unwrap();
        assert!(answer.rows_fetched > 0);

        assert!(matches!(
            system.engine().plan_stats(999),
            Err(CoreError::NoDataForRange)
        ));
    }

    #[test]
    fn batch_execution_dedupes_and_matches_sequential() {
        let (system, user, records) = setup(false);
        let session = system
            .session(&user)
            .with_options(ExecOptions::with_method(RangeMethod::Bpb));

        // A mix with guaranteed overlap: two identical ranges plus points.
        let queries = vec![
            Query::count().at_dims([1]).between(0, 899),
            Query::count().at_dims([1]).between(0, 899),
            Query::count()
                .at_dims(records[5].dims.clone())
                .at(records[5].time),
            Query::sum(0).at_dims([2]).between(0, 1799),
        ];

        let sequential: Vec<QueryAnswer> = queries
            .iter()
            .map(|q| session.execute(q).unwrap())
            .collect();
        let sequential_rows: usize = {
            let summaries = system.observer().per_query_summaries();
            summaries.iter().map(|s| s.rows_fetched).sum()
        };

        system.observer().reset();
        let batch: Vec<QueryAnswer> = session
            .execute_batch(&queries)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        let batch_rows = system.observer().summary().rows_fetched;

        assert_eq!(batch, sequential, "batch answers must equal sequential");
        assert!(
            batch_rows < sequential_rows,
            "dedup must fetch strictly fewer rows ({batch_rows} vs {sequential_rows})"
        );
    }

    #[test]
    fn batch_surfaces_per_query_errors() {
        let (system, user, _) = setup(false);
        let session = system
            .session(&user)
            .with_options(ExecOptions::with_method(RangeMethod::Bpb));
        let queries = vec![
            Query::count().at_dims([1]).between(0, 899),
            Query::count().at_dims([1]).at(999_999), // outside any epoch
        ];
        let results = session.execute_batch(&queries);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(CoreError::NoDataForRange)));
    }
}
