//! Query execution engine and the top-level [`ConcealerSystem`] facade.
//!
//! The engine is the code that, in the real deployment, runs inside the SGX
//! enclave at the service provider: it caches the decrypted per-epoch
//! metadata (`cell_id[]`, `c_tuple[]`, per-cell counts, verifiable tags and
//! per-bin re-encryption rounds), turns queries into fixed-size fetches via
//! the BPB / eBPB / winSecRange methods, verifies, filters and aggregates
//! the fetched tuples, and — for multi-round queries — re-encrypts what it
//! fetched to preserve forward privacy.

use std::collections::{BTreeMap, HashMap};


use concealer_crypto::{EpochId, EpochKey, MasterKey};
use concealer_enclave::registry::{Credential, QueryScope, UserId, UserRegistry};
use concealer_enclave::{Enclave, EnclaveConfig, SideChannelMeter};
use concealer_storage::{AccessObserver, EncryptedRow, EpochStore};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::bins::{BinPlan, PackingAlgorithm};
use crate::codec;
use crate::config::SystemConfig;
use crate::dynamic;
use crate::grid::Grid;
use crate::provider::{DataProvider, EpochStats};
use crate::query::filter::{build_filter_plan, process_rows_oblivious, process_rows_plain, FilterPlan};
use crate::query::trapdoor::{generate_oblivious, generate_plain, FetchSpec};
use crate::query::{Accumulator, Predicate, Query, QueryAnswer};
use crate::superbin::SuperBinPlan;
use crate::types::{EpochWindow, Record};
use crate::verify::verify_cell_chain;
use crate::{CoreError, Result};

/// Which range-query execution method to use (§4.2, §5.2, §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RangeMethod {
    /// Convert the range into point-style bin fetches (trivial method).
    Bpb,
    /// Enhanced BPB: fetch only the cell-ids covering the range, padded to
    /// the worst-case window size (leaks under sliding windows —
    /// Example 5.2.2).
    #[default]
    Ebpb,
    /// Fixed-interval bins: fetch whole pre-defined time intervals, immune
    /// to sliding-window attacks.
    WinSecRange,
}

/// Options controlling range-query execution.
#[derive(Debug, Clone, Copy)]
pub struct RangeOptions {
    /// Which method to execute the range with.
    pub method: RangeMethod,
    /// Whether to group bins into super-bins (§8) and fetch whole
    /// super-bins, defending against query-workload frequency attacks.
    pub use_superbins: bool,
    /// Number of super-bins (`f` in §8).
    pub num_super_bins: usize,
    /// Whether to run the §6 multi-round protocol: fetch extra random bins
    /// from every round the query spans and re-encrypt everything fetched.
    pub forward_private: bool,
}

impl Default for RangeOptions {
    fn default() -> Self {
        RangeOptions {
            method: RangeMethod::Ebpb,
            use_superbins: false,
            num_super_bins: 4,
            forward_private: false,
        }
    }
}

/// Enclave-resident state for one registered epoch.
#[derive(Debug)]
struct EpochRuntime {
    epoch_id: u64,
    window: EpochWindow,
    /// `cell_id[]`: flat cell index → cell-id.
    cell_assignment: Vec<u32>,
    /// Per-flat-cell tuple counts (eBPB metadata).
    cell_counts: Vec<u32>,
    /// `c_tuple[]`: cell-id → tuple count.
    c_tuple: Vec<u32>,
    /// cell-id → number of grid cells assigned to it (super-bin weights).
    cells_per_cell_id: Vec<u32>,
    /// Number of fake tuples shipped with the epoch.
    total_fakes: u64,
    /// Cached verifiable tags (encrypted), one per cell-id; empty when the
    /// data provider skipped verification.
    tags: Vec<Vec<u8>>,
    /// The BPB bin plan.
    bin_plan: BinPlan,
    /// Per-bin re-encryption round counters (the §6 meta-index).
    bin_rounds: Vec<u64>,
    /// Super-bin plan, built lazily on first use.
    superbin_plan: Option<SuperBinPlan>,
    /// Cached eBPB worst-case window sizes, keyed by window length ℓ.
    ebpb_sizes: HashMap<u64, u64>,
    /// winSecRange interval plan, built lazily.
    winsec: Option<WinSecPlan>,
}

/// winSecRange fixed-interval plan for one epoch.
#[derive(Debug, Clone)]
struct WinSecPlan {
    /// Per interval: the cell-ids whose cells fall in the interval, with
    /// their tuple counts, plus the fake range padding the interval to the
    /// common size.
    intervals: Vec<WinSecInterval>,
    /// Common (maximum) interval size in tuples (kept for diagnostics).
    #[allow(dead_code)]
    interval_size: u64,
    /// Interval length in grid time rows (λ).
    rows_per_interval: u64,
}

#[derive(Debug, Clone)]
struct WinSecInterval {
    cells: Vec<(u32, u32)>,
    #[allow(dead_code)]
    real: u64,
    fake_range: (u64, u64),
}

/// A user's handle on the system: their id and credential, as issued by the
/// data provider at registration time.
#[derive(Debug, Clone)]
pub struct UserHandle {
    /// The registered user id.
    pub user_id: UserId,
    /// The credential issued by the data provider.
    pub credential: Credential,
}

/// The enclave-side query engine.
pub struct QueryEngine {
    config: SystemConfig,
    enclave: Enclave,
    store: EpochStore,
    epochs: RwLock<BTreeMap<u64, EpochRuntime>>,
    rng: Mutex<StdRng>,
}

impl std::fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryEngine")
            .field("epochs", &self.epochs.read().len())
            .field("oblivious", &self.enclave.is_oblivious())
            .finish_non_exhaustive()
    }
}

impl QueryEngine {
    /// Create an engine bound to an enclave and a store.
    #[must_use]
    pub fn new(config: SystemConfig, enclave: Enclave, store: EpochStore, rng_seed: u64) -> Self {
        QueryEngine {
            config,
            enclave,
            store,
            epochs: RwLock::new(BTreeMap::new()),
            rng: Mutex::new(StdRng::seed_from_u64(rng_seed)),
        }
    }

    /// The enclave this engine runs in.
    #[must_use]
    pub fn enclave(&self) -> &Enclave {
        &self.enclave
    }

    /// The side-channel meter of the underlying enclave.
    #[must_use]
    pub fn meter(&self) -> &SideChannelMeter {
        self.enclave.meter()
    }

    /// Epoch ids currently registered with the engine.
    #[must_use]
    pub fn registered_epochs(&self) -> Vec<u64> {
        self.epochs.read().keys().copied().collect()
    }

    /// Bin-plan statistics for an epoch: `(num_bins, bin_size)`.
    pub fn bin_stats(&self, epoch_id: u64) -> Result<(usize, u64)> {
        let epochs = self.epochs.read();
        let rt = epochs
            .get(&epoch_id)
            .ok_or(CoreError::NoDataForRange)?;
        Ok((rt.bin_plan.num_bins(), rt.bin_plan.bin_size))
    }

    /// Register an ingested epoch: pull its metadata from the store,
    /// decrypt it inside the enclave, and build the bin plan (Step 0 of the
    /// BPB method).
    pub fn register_epoch(&self, epoch_id: u64) -> Result<()> {
        let metadata = self.store.metadata(epoch_id)?;
        let key = self.enclave.epoch_key(EpochId(epoch_id), 0);

        let assignment_and_counts = codec::decode_u32_vector(
            &key.rand
                .decrypt(&metadata.enc_cell_id)
                .map_err(|_| CoreError::CorruptMetadata)?,
        )?;
        let c_tuple = codec::decode_u32_vector(
            &key.rand
                .decrypt(&metadata.enc_c_tuple)
                .map_err(|_| CoreError::CorruptMetadata)?,
        )?;
        if assignment_and_counts.len() % 2 != 0 {
            return Err(CoreError::CorruptMetadata);
        }
        let total_cells = assignment_and_counts.len() / 2;
        let cell_assignment = assignment_and_counts[..total_cells].to_vec();
        let cell_counts = assignment_and_counts[total_cells..].to_vec();

        let mut cells_per_cell_id = vec![0u32; self.config.grid.num_cell_ids as usize];
        for &cid in &cell_assignment {
            if let Some(slot) = cells_per_cell_id.get_mut(cid as usize) {
                *slot += 1;
            }
        }

        let real_total: u64 = c_tuple.iter().map(|&c| u64::from(c)).sum();
        let total_fakes = (metadata.advertised_rows as u64).saturating_sub(real_total);

        let bin_plan = BinPlan::build(&c_tuple, PackingAlgorithm::FirstFitDecreasing, None);
        let bin_rounds = vec![0u64; bin_plan.num_bins()];

        let runtime = EpochRuntime {
            epoch_id,
            window: EpochWindow {
                start: epoch_id,
                duration: self.config.epoch_duration,
            },
            cell_assignment,
            cell_counts,
            c_tuple,
            cells_per_cell_id,
            total_fakes,
            tags: metadata.enc_tags,
            bin_plan,
            bin_rounds,
            superbin_plan: None,
            ebpb_sizes: HashMap::new(),
            winsec: None,
        };
        self.epochs.write().insert(epoch_id, runtime);
        Ok(())
    }

    /// Execute a point query (§4.2).
    pub fn point_query(
        &self,
        user: &UserHandle,
        query: &Query,
        registry_scope: QueryScope,
    ) -> Result<QueryAnswer> {
        let _session = self
            .enclave
            .open_session(user.user_id, &user.credential, registry_scope)?;
        let Predicate::Point { dims, time } = &query.predicate else {
            return Err(CoreError::InvalidQuery {
                reason: "point_query requires a Point predicate",
            });
        };

        let mut epochs = self.epochs.write();
        let rt = epochs
            .values_mut()
            .find(|rt| rt.window.contains(*time))
            .ok_or(CoreError::NoDataForRange)?;

        let grid = self.grid_for(rt);
        let coord = grid.locate(dims, *time)?;
        let cid = rt.cell_assignment[coord.flat as usize];
        let bin_idx = rt
            .bin_plan
            .bin_of_cell(cid)
            .ok_or(CoreError::CorruptMetadata)?;

        let mut fetched = 0usize;
        let mut decrypted = 0usize;
        let mut verified = false;
        let mut acc = Accumulator::default();
        self.fetch_and_process_bin(
            rt,
            bin_idx,
            query,
            &mut acc,
            &mut fetched,
            &mut decrypted,
            &mut verified,
        )?;
        self.store.mark_query_boundary();

        Ok(QueryAnswer {
            value: acc.finish(&query.aggregate),
            rows_fetched: fetched,
            rows_decrypted: decrypted,
            verified,
            epochs_touched: 1,
        })
    }

    /// Execute a range query with the selected method (§4.2, §5).
    pub fn range_query(
        &self,
        user: &UserHandle,
        query: &Query,
        opts: RangeOptions,
        registry_scope: QueryScope,
    ) -> Result<QueryAnswer> {
        let _session = self
            .enclave
            .open_session(user.user_id, &user.credential, registry_scope)?;
        let (t_start, t_end) = query.predicate.time_span();

        let mut epochs = self.epochs.write();
        let touched: Vec<u64> = epochs
            .values()
            .filter(|rt| rt.window.overlaps(t_start, t_end))
            .map(|rt| rt.epoch_id)
            .collect();
        if touched.is_empty() {
            return Err(CoreError::NoDataForRange);
        }
        let multi_round = opts.forward_private && epochs.len() > 1;
        // The §6 protocol spans the whole stretch of rounds between the
        // first and last satisfying round.
        let span: Vec<u64> = if multi_round {
            let lo = *touched.first().expect("non-empty");
            let hi = *touched.last().expect("non-empty");
            epochs
                .keys()
                .copied()
                .filter(|e| *e >= lo && *e <= hi)
                .collect()
        } else {
            touched.clone()
        };

        let mut acc = Accumulator::default();
        let mut fetched = 0usize;
        let mut decrypted = 0usize;
        let mut verified = self.config.verify_integrity;
        let mut epochs_touched = 0usize;

        for epoch_id in span {
            let rt = epochs.get_mut(&epoch_id).expect("registered epoch");
            let satisfies = rt.window.overlaps(t_start, t_end);
            epochs_touched += 1;

            let mut bins_fetched: Vec<usize> = Vec::new();
            match opts.method {
                RangeMethod::Bpb => {
                    if satisfies {
                        let mut bin_set = self.bins_for_range(rt, query)?;
                        if opts.use_superbins {
                            bin_set = self.expand_to_superbins(rt, &bin_set, opts.num_super_bins);
                        }
                        for bin_idx in bin_set {
                            self.fetch_and_process_bin(
                                rt,
                                bin_idx,
                                query,
                                &mut acc,
                                &mut fetched,
                                &mut decrypted,
                                &mut verified,
                            )?;
                            bins_fetched.push(bin_idx);
                        }
                    }
                }
                RangeMethod::Ebpb => {
                    if satisfies {
                        let (f, d) = self.execute_ebpb(rt, query, &mut acc)?;
                        fetched += f;
                        decrypted += d;
                        // eBPB bypasses bins; verification is per cell-id and
                        // covered inside execute_ebpb when enabled.
                    }
                }
                RangeMethod::WinSecRange => {
                    if satisfies {
                        let (f, d) = self.execute_winsec(rt, query, &mut acc)?;
                        fetched += f;
                        decrypted += d;
                    }
                }
            }

            // §6: when the query spans multiple rounds, fetch extra random
            // bins from every round in the span and re-encrypt everything.
            if multi_round {
                let extra = dynamic::extra_bins_per_round(rt.bin_plan.num_bins());
                let mut rng = self.rng.lock();
                while bins_fetched.len() < extra && bins_fetched.len() < rt.bin_plan.num_bins() {
                    let candidate = rng.gen_range(0..rt.bin_plan.num_bins());
                    if !bins_fetched.contains(&candidate) {
                        drop(rng);
                        self.fetch_and_process_bin(
                            rt,
                            candidate,
                            query,
                            &mut Accumulator::default(),
                            &mut fetched,
                            &mut decrypted,
                            &mut verified,
                        )?;
                        bins_fetched.push(candidate);
                        rng = self.rng.lock();
                    }
                }
                drop(rng);
                for bin_idx in bins_fetched {
                    self.reencrypt_and_rewrite_bin(rt, bin_idx)?;
                }
            }
        }
        self.store.mark_query_boundary();

        Ok(QueryAnswer {
            value: acc.finish(&query.aggregate),
            rows_fetched: fetched,
            rows_decrypted: decrypted,
            verified: verified && self.config.verify_integrity,
            epochs_touched,
        })
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn grid_for(&self, rt: &EpochRuntime) -> Grid {
        let key = self.enclave.epoch_key(EpochId(rt.epoch_id), 0);
        Grid::new(self.config.grid.clone(), rt.window, key.grid_prf)
    }

    /// The bins covering a range query's cells (BPB trivial method).
    fn bins_for_range(&self, rt: &EpochRuntime, query: &Query) -> Result<Vec<usize>> {
        let grid = self.grid_for(rt);
        let (t_start, t_end) = query.predicate.time_span();
        let rows = grid.time_rows_for_range(t_start, t_end);
        let cells = match query.predicate.dims() {
            Some(dims) => grid.cells_for_dims(dims, &rows)?,
            None => grid.cells_for_all_dims(&rows),
        };
        let mut bins: Vec<usize> = cells
            .iter()
            .filter_map(|&flat| {
                let cid = rt.cell_assignment[flat as usize];
                rt.bin_plan.bin_of_cell(cid)
            })
            .collect();
        bins.sort_unstable();
        bins.dedup();
        Ok(bins)
    }

    fn expand_to_superbins(
        &self,
        rt: &mut EpochRuntime,
        bins: &[usize],
        num_super_bins: usize,
    ) -> Vec<usize> {
        if rt.superbin_plan.is_none() {
            rt.superbin_plan = Some(SuperBinPlan::build(
                &rt.bin_plan,
                &rt.cells_per_cell_id,
                num_super_bins,
            ));
        }
        let plan = rt.superbin_plan.as_ref().expect("just built");
        let mut expanded: Vec<usize> = bins
            .iter()
            .flat_map(|&b| plan.fetch_set_for_bin(b).to_vec())
            .collect();
        expanded.sort_unstable();
        expanded.dedup();
        expanded
    }

    /// Fetch one bin and fold its matching tuples into the accumulator.
    #[allow(clippy::too_many_arguments)]
    fn fetch_and_process_bin(
        &self,
        rt: &EpochRuntime,
        bin_idx: usize,
        query: &Query,
        acc: &mut Accumulator,
        fetched: &mut usize,
        decrypted: &mut usize,
        verified: &mut bool,
    ) -> Result<()> {
        let round = rt.bin_rounds[bin_idx];
        let key = self.enclave.epoch_key(EpochId(rt.epoch_id), round);
        let bin = &rt.bin_plan.bins[bin_idx];

        let spec = FetchSpec {
            cells: bin
                .cell_ids
                .iter()
                .map(|&cid| (cid, rt.c_tuple[cid as usize]))
                .collect(),
            fake_range: clamp_fake_range(bin.fake_range, rt.total_fakes),
        };
        let meter = self.enclave.meter();
        let trapdoors = if self.enclave.is_oblivious() {
            generate_oblivious(
                &key,
                &spec,
                rt.bin_plan.max_cells_per_bin(),
                rt.c_tuple.iter().copied().max().unwrap_or(0),
                rt.bin_plan.max_fakes_per_bin(),
                meter,
            )
        } else {
            generate_plain(&key, &spec, meter)
        };
        let rows = self.store.fetch_batch(rt.epoch_id, &trapdoors)?;
        *fetched += rows.len();

        if self.config.verify_integrity && !rt.tags.is_empty() {
            self.verify_bin(rt, &key, &bin.cell_ids, &rows)?;
            *verified = true;
        }

        let (bin_acc, d) = self.process_rows(&key, rt, query, &rows)?;
        *decrypted += d;
        acc.merge(bin_acc);
        Ok(())
    }

    /// Group fetched rows by cell-id (via the authenticated index
    /// plaintext) and verify each chain against its tag.
    fn verify_bin(
        &self,
        rt: &EpochRuntime,
        key: &EpochKey,
        cell_ids: &[u32],
        rows: &[EncryptedRow],
    ) -> Result<()> {
        let mut per_cell: HashMap<u32, Vec<(u32, &EncryptedRow)>> = HashMap::new();
        for row in rows {
            if let Ok(plain) = key.det.decrypt(&row.index_key) {
                if let Some((cid, counter)) = codec::decode_index_plain(&plain) {
                    per_cell.entry(cid).or_default().push((counter, row));
                }
            }
        }
        for &cid in cell_ids {
            let mut entries = per_cell.remove(&cid).unwrap_or_default();
            entries.sort_unstable_by_key(|(ctr, _)| *ctr);
            let ordered: Vec<&EncryptedRow> = entries.into_iter().map(|(_, r)| r).collect();
            let tag = rt
                .tags
                .get(cid as usize)
                .ok_or(CoreError::IntegrityViolation { cell_id: cid })?;
            verify_cell_chain(key, cid, &ordered, tag)?;
        }
        Ok(())
    }

    fn process_rows(
        &self,
        key: &EpochKey,
        rt: &EpochRuntime,
        query: &Query,
        rows: &[EncryptedRow],
    ) -> Result<(Accumulator, usize)> {
        let plan: FilterPlan = build_filter_plan(key, &self.config, &query.predicate, rt.window);
        let meter = self.enclave.meter();
        if self.enclave.is_oblivious() {
            process_rows_oblivious(key, &plan, &query.aggregate, rows, meter)
        } else {
            process_rows_plain(key, &plan, &query.aggregate, rows, meter)
        }
    }

    /// eBPB (§5.2): fetch exactly the cell-ids covering the range, padded to
    /// the worst-case ℓ-row window size.
    fn execute_ebpb(
        &self,
        rt: &mut EpochRuntime,
        query: &Query,
        acc: &mut Accumulator,
    ) -> Result<(usize, usize)> {
        let grid = self.grid_for(rt);
        let (t_start, t_end) = query.predicate.time_span();
        let rows_needed = grid.time_rows_for_range(t_start, t_end);
        if rows_needed.is_empty() {
            return Ok((0, 0));
        }
        let cells = match query.predicate.dims() {
            Some(dims) => grid.cells_for_dims(dims, &rows_needed)?,
            None => grid.cells_for_all_dims(&rows_needed),
        };
        let mut cids: Vec<u32> = cells
            .iter()
            .map(|&flat| rt.cell_assignment[flat as usize])
            .collect();
        cids.sort_unstable();
        cids.dedup();

        let real: u64 = cids.iter().map(|&c| u64::from(rt.c_tuple[c as usize])).sum();
        let target = if query.predicate.dims().is_some() {
            self.ebpb_window_size(rt, rows_needed.len() as u64).max(real)
        } else {
            real
        };
        let pad = (target - real).min(rt.total_fakes);

        // Group the needed cell-ids by their bin's re-encryption round so
        // trapdoors and filters use the right key even after §6 rewrites.
        let mut by_round: BTreeMap<u64, Vec<(u32, u32)>> = BTreeMap::new();
        for &cid in &cids {
            let round = rt
                .bin_plan
                .bin_of_cell(cid)
                .map_or(0, |b| rt.bin_rounds[b]);
            by_round
                .entry(round)
                .or_default()
                .push((cid, rt.c_tuple[cid as usize]));
        }

        let mut fetched = 0usize;
        let mut decrypted = 0usize;
        let mut first = true;
        for (round, cells) in by_round {
            let key = self.enclave.epoch_key(EpochId(rt.epoch_id), round);
            let spec = FetchSpec {
                cells,
                fake_range: if first { (0, pad) } else { (0, 0) },
            };
            first = false;
            let trapdoors = generate_plain(&key, &spec, self.enclave.meter());
            let rows = self.store.fetch_batch(rt.epoch_id, &trapdoors)?;
            fetched += rows.len();
            if self.config.verify_integrity && !rt.tags.is_empty() {
                let cids_in_group: Vec<u32> = spec.cells.iter().map(|(c, _)| *c).collect();
                self.verify_bin(rt, &key, &cids_in_group, &rows)?;
            }
            let (group_acc, d) = self.process_rows(&key, rt, query, &rows)?;
            decrypted += d;
            acc.merge(group_acc);
        }
        Ok((fetched, decrypted))
    }

    /// Worst-case tuples in any ℓ consecutive time rows of any dimension
    /// column (the eBPB bin size), cached per ℓ.
    fn ebpb_window_size(&self, rt: &mut EpochRuntime, window_len: u64) -> u64 {
        if let Some(&cached) = rt.ebpb_sizes.get(&window_len) {
            return cached;
        }
        let y = self.config.grid.time_subintervals as usize;
        let len = (window_len as usize).clamp(1, y);
        let mut best = 0u64;
        let columns = rt.cell_counts.len() / y.max(1);
        for col in 0..columns {
            let col_counts = &rt.cell_counts[col * y..(col + 1) * y];
            let mut window_sum: u64 = col_counts[..len].iter().map(|&c| u64::from(c)).sum();
            best = best.max(window_sum);
            for i in len..y {
                window_sum += u64::from(col_counts[i]);
                window_sum -= u64::from(col_counts[i - len]);
                best = best.max(window_sum);
            }
        }
        rt.ebpb_sizes.insert(window_len, best);
        best
    }

    /// winSecRange (§5.3): fetch whole fixed time intervals.
    fn execute_winsec(
        &self,
        rt: &mut EpochRuntime,
        query: &Query,
        acc: &mut Accumulator,
    ) -> Result<(usize, usize)> {
        if rt.winsec.is_none() {
            rt.winsec = Some(self.build_winsec_plan(rt));
        }
        let plan = rt.winsec.clone().expect("just built");

        let grid = self.grid_for(rt);
        let (t_start, t_end) = query.predicate.time_span();
        let rows_needed = grid.time_rows_for_range(t_start, t_end);
        if rows_needed.is_empty() {
            return Ok((0, 0));
        }
        let first_interval = rows_needed[0] / plan.rows_per_interval;
        let last_interval = rows_needed[rows_needed.len() - 1] / plan.rows_per_interval;

        // Union of the cell-ids of every interval overlapping the range.
        // Cell-ids may appear in several intervals (the PRF assignment does
        // not stratify them by time), so they are deduplicated here to avoid
        // fetching — and counting — the same tuples twice.
        let mut cids: Vec<u32> = Vec::new();
        let mut fake_budget = 0u64;
        for interval_idx in first_interval..=last_interval {
            if let Some(interval) = plan.intervals.get(interval_idx as usize) {
                cids.extend(interval.cells.iter().map(|(c, _)| *c));
                fake_budget += interval.fake_range.1 - interval.fake_range.0;
            }
        }
        cids.sort_unstable();
        cids.dedup();

        // Group by round like eBPB so trapdoors use the right key after §6
        // rewrites.
        let mut by_round: BTreeMap<u64, Vec<(u32, u32)>> = BTreeMap::new();
        for &cid in &cids {
            let round = rt
                .bin_plan
                .bin_of_cell(cid)
                .map_or(0, |b| rt.bin_rounds[b]);
            by_round
                .entry(round)
                .or_default()
                .push((cid, rt.c_tuple[cid as usize]));
        }

        let mut fetched = 0usize;
        let mut decrypted = 0usize;
        let mut first = true;
        for (round, cells) in by_round {
            let key = self.enclave.epoch_key(EpochId(rt.epoch_id), round);
            let spec = FetchSpec {
                cells,
                fake_range: if first {
                    (0, fake_budget.min(rt.total_fakes))
                } else {
                    (0, 0)
                },
            };
            first = false;
            let trapdoors = generate_plain(&key, &spec, self.enclave.meter());
            let rows = self.store.fetch_batch(rt.epoch_id, &trapdoors)?;
            fetched += rows.len();
            let (group_acc, d) = self.process_rows(&key, rt, query, &rows)?;
            decrypted += d;
            acc.merge(group_acc);
        }
        Ok((fetched, decrypted))
    }

    fn build_winsec_plan(&self, rt: &EpochRuntime) -> WinSecPlan {
        let y = self.config.grid.time_subintervals;
        let lambda = self.config.winsec_rows_per_interval.max(1).min(y);
        let num_intervals = y.div_ceil(lambda);

        // Every interval lists every cell-id that has at least one grid cell
        // in the interval's time rows. A cell-id may appear in several
        // intervals (the PRF cell-id assignment is not time-stratified);
        // retrieving an interval therefore retrieves every tuple of every
        // cell-id that *could* hold tuples from the interval, which is the
        // superset the volume-hiding argument needs. Queries spanning
        // multiple intervals deduplicate the union before fetching.
        let mut interval_cells: Vec<Vec<(u32, u32)>> = vec![Vec::new(); num_intervals as usize];
        let mut seen: Vec<Vec<bool>> =
            vec![vec![false; rt.c_tuple.len()]; num_intervals as usize];
        for (flat, &cid) in rt.cell_assignment.iter().enumerate() {
            let time_row = (flat as u64) % y;
            let interval = (time_row / lambda) as usize;
            if !seen[interval][cid as usize] {
                seen[interval][cid as usize] = true;
                interval_cells[interval].push((cid, rt.c_tuple[cid as usize]));
            }
        }

        let reals: Vec<u64> = interval_cells
            .iter()
            .map(|cells| cells.iter().map(|(_, c)| u64::from(*c)).sum())
            .collect();
        let interval_size = reals.iter().copied().max().unwrap_or(0);

        let mut intervals = Vec::with_capacity(num_intervals as usize);
        let mut next_fake = 0u64;
        for (cells, real) in interval_cells.into_iter().zip(reals) {
            let need = (interval_size - real).min(rt.total_fakes.saturating_sub(next_fake));
            intervals.push(WinSecInterval {
                cells,
                real,
                fake_range: (next_fake, next_fake + need),
            });
            next_fake += need;
        }
        WinSecPlan {
            intervals,
            interval_size,
            rows_per_interval: lambda,
        }
    }

    /// Re-encrypt a fetched bin under the next round key and write it back
    /// (§6), bumping the bin's round counter and refreshing its tags.
    fn reencrypt_and_rewrite_bin(&self, rt: &mut EpochRuntime, bin_idx: usize) -> Result<()> {
        let old_round = rt.bin_rounds[bin_idx];
        let old_key = self.enclave.epoch_key(EpochId(rt.epoch_id), old_round);
        let new_key = self.enclave.epoch_key(EpochId(rt.epoch_id), old_round + 1);
        let bin = &rt.bin_plan.bins[bin_idx];

        let spec = FetchSpec {
            cells: bin
                .cell_ids
                .iter()
                .map(|&cid| (cid, rt.c_tuple[cid as usize]))
                .collect(),
            fake_range: clamp_fake_range(bin.fake_range, rt.total_fakes),
        };
        let trapdoors = generate_plain(&old_key, &spec, self.enclave.meter());
        let rows = self.store.fetch_batch(rt.epoch_id, &trapdoors)?;

        let mut rng = self.rng.lock();
        let out = dynamic::reencrypt_bin(
            &old_key,
            &new_key,
            &rows,
            &bin.cell_ids,
            self.config.grid.num_cell_ids as usize,
            &mut *rng,
        )?;
        drop(rng);

        self.store.rewrite_rows(rt.epoch_id, out.replacements)?;
        if !rt.tags.is_empty() {
            let updates: Vec<(usize, Vec<u8>)> = out
                .new_tags
                .iter()
                .map(|(cid, tag)| (*cid as usize, tag.clone()))
                .collect();
            for (cid, tag) in &out.new_tags {
                rt.tags[*cid as usize] = tag.clone();
            }
            self.store.update_tags(rt.epoch_id, updates)?;
        }
        rt.bin_rounds[bin_idx] = old_round + 1;
        Ok(())
    }
}

fn clamp_fake_range(range: (u64, u64), total_fakes: u64) -> (u64, u64) {
    (range.0.min(total_fakes), range.1.min(total_fakes))
}

/// Convenience facade bundling the data provider, the service-provider
/// store and the enclave-side query engine — the full deployment of
/// Figure 1 of the paper in one value. Examples and benchmarks use this;
/// library users who need to place the three roles on different machines
/// can use [`DataProvider`], [`concealer_storage::EpochStore`] and
/// [`QueryEngine`] directly.
pub struct ConcealerSystem {
    provider: DataProvider,
    store: EpochStore,
    engine: QueryEngine,
    registry: UserRegistry,
}

impl std::fmt::Debug for ConcealerSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcealerSystem")
            .field("epochs", &self.engine.registered_epochs().len())
            .field("users", &self.registry.len())
            .finish_non_exhaustive()
    }
}

impl ConcealerSystem {
    /// Set up a full deployment: generate the shared secret, provision the
    /// enclave, and wire the store to it.
    #[must_use]
    pub fn new<R: RngCore>(config: SystemConfig, rng: &mut R) -> Self {
        let master = MasterKey::generate(rng);
        Self::with_master(config, master, rng.gen())
    }

    /// Set up a deployment with an explicit master key and engine RNG seed
    /// (useful for reproducible tests and benchmarks).
    #[must_use]
    pub fn with_master(config: SystemConfig, master: MasterKey, engine_seed: u64) -> Self {
        let provider = DataProvider::new(master.clone(), config.clone());
        let store = EpochStore::new();
        let enclave_config = if config.oblivious {
            EnclaveConfig::oblivious()
        } else {
            EnclaveConfig::default()
        };
        let enclave = Enclave::provision(master, UserRegistry::new(), enclave_config);
        let engine = QueryEngine::new(config, enclave, store.clone(), engine_seed);
        ConcealerSystem {
            provider,
            store,
            engine,
            registry: UserRegistry::new(),
        }
    }

    /// Register a user with the data provider; the updated registry is
    /// pushed to the enclave, and the credential is returned to the user.
    pub fn register_user(&mut self, user_id: u64, devices: Vec<u64>, aggregate: bool) -> UserHandle {
        let credential = self.registry.register(
            self.provider.master(),
            UserId(user_id),
            devices,
            aggregate,
        );
        self.engine.enclave().update_registry(self.registry.clone());
        UserHandle {
            user_id: UserId(user_id),
            credential,
        }
    }

    /// Encrypt and ingest one epoch of records (Phase 1 of the paper).
    pub fn ingest_epoch<R: RngCore>(
        &mut self,
        epoch_start: u64,
        records: Vec<Record>,
        rng: &mut R,
    ) -> Result<EpochStats> {
        let shipment = self.provider.encrypt_epoch(epoch_start, &records, rng)?;
        let stats = shipment.stats.clone();
        self.store
            .ingest_epoch(shipment.epoch_id, shipment.rows, shipment.metadata)?;
        self.engine.register_epoch(epoch_start)?;
        Ok(stats)
    }

    /// Execute a point query on behalf of a user.
    pub fn point_query(&self, user: &UserHandle, query: &Query) -> Result<QueryAnswer> {
        self.engine
            .point_query(user, query, scope_for_query(query))
    }

    /// Execute a range query on behalf of a user.
    pub fn range_query(
        &self,
        user: &UserHandle,
        query: &Query,
        opts: RangeOptions,
    ) -> Result<QueryAnswer> {
        self.engine
            .range_query(user, query, opts, scope_for_query(query))
    }

    /// The adversary's view of the storage layer.
    #[must_use]
    pub fn observer(&self) -> &AccessObserver {
        self.store.observer()
    }

    /// The enclave's side-channel meter.
    #[must_use]
    pub fn meter(&self) -> &SideChannelMeter {
        self.engine.meter()
    }

    /// The service-provider store.
    #[must_use]
    pub fn store(&self) -> &EpochStore {
        &self.store
    }

    /// The enclave-side query engine.
    #[must_use]
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// The data provider.
    #[must_use]
    pub fn provider(&self) -> &DataProvider {
        &self.provider
    }
}

/// Individualized predicates (pinning an observation/device id) need
/// individualized authorization; everything else runs under the aggregate
/// scope.
fn scope_for_query(query: &Query) -> QueryScope {
    match query.predicate.observation() {
        Some(device_id) => QueryScope::Individualized { device_id },
        None => QueryScope::Aggregate,
    }
}

// Re-export for the facade's users.
pub use concealer_storage::EpochStore as Store;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FakeTupleStrategy, GridShape};
    use crate::query::Aggregate;

    fn test_config(oblivious: bool) -> SystemConfig {
        SystemConfig {
            grid: GridShape {
                dim_buckets: vec![6],
                time_subintervals: 8,
                num_cell_ids: 16,
            },
            epoch_duration: 3600,
            time_granularity: 60,
            fake_strategy: FakeTupleStrategy::SimulateBins,
            verify_integrity: true,
            oblivious,
            winsec_rows_per_interval: 2,
        }
    }

    /// Deterministic workload: 8 locations, device ids 100-104, one record
    /// every 9 seconds.
    fn workload(epoch_start: u64, n: u64) -> Vec<Record> {
        (0..n)
            .map(|i| Record::spatial(i % 8, epoch_start + (i * 9) % 3600, 100 + i % 5))
            .collect()
    }

    /// Count records matching a predicate in cleartext (ground truth).
    fn cleartext_count(records: &[Record], dims: Option<&[u64]>, obs: Option<u64>, t: (u64, u64)) -> u64 {
        records
            .iter()
            .filter(|r| {
                dims.is_none_or(|d| r.dims == d)
                    && obs.is_none_or(|o| r.observation() == Some(o))
                    && r.time >= t.0
                    && r.time <= t.1
            })
            .count() as u64
    }

    fn setup(oblivious: bool) -> (ConcealerSystem, UserHandle, Vec<Record>) {
        let mut rng = StdRng::seed_from_u64(99);
        let mut system = ConcealerSystem::new(test_config(oblivious), &mut rng);
        let user = system.register_user(1, vec![100, 101, 102, 103, 104], true);
        let records = workload(0, 400);
        system.ingest_epoch(0, records.clone(), &mut rng).unwrap();
        (system, user, records)
    }

    #[test]
    fn point_query_count_matches_cleartext() {
        let (system, user, records) = setup(false);
        // Pick an existing record's (location, time).
        let target = &records[37];
        let query = Query {
            aggregate: Aggregate::Count,
            predicate: Predicate::Point {
                dims: target.dims.clone(),
                time: target.time,
            },
        };
        let answer = system.point_query(&user, &query).unwrap();
        // Point filter tokens cover the whole granule the target falls in.
        let g = 60;
        let granule_start = (target.time / g) * g;
        let expected = cleartext_count(
            &records,
            Some(&target.dims),
            None,
            (granule_start, granule_start + g - 1),
        );
        assert_eq!(answer.value, crate::query::AnswerValue::Count(expected));
        assert!(answer.verified);
        assert!(answer.rows_fetched > 0);
    }

    #[test]
    fn range_count_matches_cleartext_all_methods() {
        let (system, user, records) = setup(false);
        for method in [RangeMethod::Bpb, RangeMethod::Ebpb, RangeMethod::WinSecRange] {
            let query = Query {
                aggregate: Aggregate::Count,
                predicate: Predicate::Range {
                    dims: Some(vec![3]),
                    observation: None,
                    time_start: 0,
                    time_end: 1799,
                },
            };
            let opts = RangeOptions { method, ..Default::default() };
            let answer = system.range_query(&user, &query, opts).unwrap();
            let expected = cleartext_count(&records, Some(&[3]), None, (0, 1799));
            assert_eq!(
                answer.value,
                crate::query::AnswerValue::Count(expected),
                "{method:?}"
            );
        }
    }

    #[test]
    fn oblivious_engine_matches_plain_engine() {
        let (plain_sys, plain_user, records) = setup(false);
        let (obliv_sys, obliv_user, _) = setup(true);
        let query = Query {
            aggregate: Aggregate::Count,
            predicate: Predicate::Range {
                dims: Some(vec![5]),
                observation: None,
                time_start: 600,
                time_end: 2399,
            },
        };
        let a = plain_sys
            .range_query(&plain_user, &query, RangeOptions::default())
            .unwrap();
        let b = obliv_sys
            .range_query(&obliv_user, &query, RangeOptions::default())
            .unwrap();
        assert_eq!(a.value, b.value);
        let expected = cleartext_count(&records, Some(&[5]), None, (600, 2399));
        assert_eq!(a.value, crate::query::AnswerValue::Count(expected));
    }

    #[test]
    fn observation_query_requires_owned_device() {
        let (mut system, _user, _records) = setup(false);
        let stranger = system.register_user(2, vec![999], true);
        let query = Query {
            aggregate: Aggregate::CollectRows,
            predicate: Predicate::Range {
                dims: None,
                observation: Some(100),
                time_start: 0,
                time_end: 3599,
            },
        };
        let err = system
            .range_query(&stranger, &query, RangeOptions::default())
            .unwrap_err();
        assert!(matches!(err, CoreError::Enclave(_)));
    }

    #[test]
    fn observation_query_counts_device_sightings() {
        let (system, user, records) = setup(false);
        let query = Query {
            aggregate: Aggregate::Count,
            predicate: Predicate::Range {
                dims: None,
                observation: Some(102),
                time_start: 0,
                time_end: 3599,
            },
        };
        let answer = system
            .range_query(&user, &query, RangeOptions { method: RangeMethod::Bpb, ..Default::default() })
            .unwrap();
        let expected = cleartext_count(&records, None, Some(102), (0, 3599));
        assert_eq!(answer.value, crate::query::AnswerValue::Count(expected));
    }

    #[test]
    fn top_k_locations_query() {
        let (system, user, records) = setup(false);
        let query = Query {
            aggregate: Aggregate::TopKLocations { k: 3 },
            predicate: Predicate::Range {
                dims: None,
                observation: None,
                time_start: 0,
                time_end: 3599,
            },
        };
        let answer = system
            .range_query(&user, &query, RangeOptions { method: RangeMethod::Bpb, ..Default::default() })
            .unwrap();
        // Ground truth top-3.
        let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
        for r in &records {
            *counts.entry(r.dims[0]).or_insert(0) += 1;
        }
        let mut pairs: Vec<(u64, u64)> = counts.into_iter().collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(3);
        assert_eq!(answer.value, crate::query::AnswerValue::LocationCounts(pairs));
    }

    #[test]
    fn volume_hiding_point_queries_fetch_identical_row_counts() {
        let (system, user, records) = setup(false);
        let targets: Vec<(Vec<u64>, u64)> = vec![
            (records[3].dims.clone(), records[3].time),
            (records[200].dims.clone(), records[200].time),
            (vec![7], 3500), // likely sparse cell
        ];
        let mut sizes = Vec::new();
        for (dims, time) in targets {
            let query = Query {
                aggregate: Aggregate::Count,
                predicate: Predicate::Point { dims, time },
            };
            let answer = system.point_query(&user, &query).unwrap();
            sizes.push(answer.rows_fetched);
        }
        assert_eq!(sizes[0], sizes[1]);
        assert_eq!(sizes[1], sizes[2], "every point query fetches one full bin");
        // And the adversary's trace shows identical per-query fetch counts.
        let summaries = system.observer().per_query_summaries();
        let fetch_counts: Vec<usize> = summaries.iter().map(|s| s.rows_fetched).collect();
        assert!(fetch_counts.windows(2).all(|w| w[0] == w[1]), "{fetch_counts:?}");
    }

    #[test]
    fn query_outside_ingested_data_errors() {
        let (system, user, _) = setup(false);
        let query = Query {
            aggregate: Aggregate::Count,
            predicate: Predicate::Point { dims: vec![1], time: 999_999 },
        };
        assert!(matches!(
            system.point_query(&user, &query),
            Err(CoreError::NoDataForRange)
        ));
    }

    #[test]
    fn tampering_is_detected_at_query_time() {
        let (system, user, records) = setup(false);
        // The adversary (service provider) flips a payload byte in every
        // stored row. Tampering a single arbitrary row would make the test
        // depend on whether that row happens to be real or a volume-hiding
        // fake (fakes carry no data, so their payloads are covered by no
        // hash chain); hitting all rows guarantees a covered victim.
        let epoch_rows = system.store().full_scan(0).unwrap();
        let rewrites: Vec<_> = epoch_rows
            .iter()
            .map(|row| {
                let mut tampered = row.clone();
                tampered.payload[5] ^= 0x01;
                (row.index_key.clone(), tampered)
            })
            .collect();
        system.store().rewrite_rows(0, rewrites).unwrap();

        // Sweep queries until one hits the tampered row's bin.
        let mut detected = false;
        for r in records.iter().step_by(7) {
            let query = Query {
                aggregate: Aggregate::Count,
                predicate: Predicate::Point { dims: r.dims.clone(), time: r.time },
            };
            match system.point_query(&user, &query) {
                Err(CoreError::IntegrityViolation { .. }) => {
                    detected = true;
                    break;
                }
                Ok(_) | Err(_) => continue,
            }
        }
        assert!(detected, "tampering must surface as an integrity violation");
    }

    #[test]
    fn multi_epoch_range_query_spans_epochs() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut system = ConcealerSystem::new(test_config(false), &mut rng);
        let user = system.register_user(1, vec![], true);
        let r0 = workload(0, 200);
        let r1 = workload(3600, 200);
        system.ingest_epoch(0, r0.clone(), &mut rng).unwrap();
        system.ingest_epoch(3600, r1.clone(), &mut rng).unwrap();

        let query = Query {
            aggregate: Aggregate::Count,
            predicate: Predicate::Range {
                dims: Some(vec![2]),
                observation: None,
                time_start: 1800,
                time_end: 5399,
            },
        };
        let answer = system
            .range_query(&user, &query, RangeOptions { method: RangeMethod::Bpb, ..Default::default() })
            .unwrap();
        let mut all = r0;
        all.extend(r1);
        let expected = cleartext_count(&all, Some(&[2]), None, (1800, 5399));
        assert_eq!(answer.value, crate::query::AnswerValue::Count(expected));
        assert_eq!(answer.epochs_touched, 2);
    }

    #[test]
    fn forward_private_query_reencrypts_and_stays_correct() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut system = ConcealerSystem::new(test_config(false), &mut rng);
        let user = system.register_user(1, vec![], true);
        let r0 = workload(0, 150);
        let r1 = workload(3600, 150);
        system.ingest_epoch(0, r0.clone(), &mut rng).unwrap();
        system.ingest_epoch(3600, r1.clone(), &mut rng).unwrap();

        let query = Query {
            aggregate: Aggregate::Count,
            predicate: Predicate::Range {
                dims: Some(vec![4]),
                observation: None,
                time_start: 0,
                time_end: 7199,
            },
        };
        let opts = RangeOptions {
            method: RangeMethod::Bpb,
            forward_private: true,
            ..Default::default()
        };
        let mut all = r0;
        all.extend(r1);
        let expected = cleartext_count(&all, Some(&[4]), None, (0, 7199));

        // Run the same query several times: answers stay correct even though
        // the underlying rows are re-encrypted after every execution.
        for i in 0..3 {
            let answer = system.range_query(&user, &query, opts).unwrap();
            assert_eq!(
                answer.value,
                crate::query::AnswerValue::Count(expected),
                "iteration {i}"
            );
        }
        // The store has seen rewrites.
        assert!(system.store().rewrite_count(0).unwrap() > 0);
        assert!(system.store().rewrite_count(3600).unwrap() > 0);
    }

    #[test]
    fn superbins_fetch_more_but_answer_identically() {
        let (system, user, records) = setup(false);
        let query = Query {
            aggregate: Aggregate::Count,
            predicate: Predicate::Range {
                dims: Some(vec![1]),
                observation: None,
                time_start: 0,
                time_end: 899,
            },
        };
        let plain = system
            .range_query(&user, &query, RangeOptions { method: RangeMethod::Bpb, ..Default::default() })
            .unwrap();
        let with_super = system
            .range_query(
                &user,
                &query,
                RangeOptions {
                    method: RangeMethod::Bpb,
                    use_superbins: true,
                    num_super_bins: 2,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(plain.value, with_super.value);
        assert!(with_super.rows_fetched >= plain.rows_fetched);
        let expected = cleartext_count(&records, Some(&[1]), None, (0, 899));
        assert_eq!(plain.value, crate::query::AnswerValue::Count(expected));
    }

    #[test]
    fn sum_min_max_average_over_payload() {
        let (system, user, records) = setup(false);
        let predicate = Predicate::Range {
            dims: Some(vec![0]),
            observation: None,
            time_start: 0,
            time_end: 3599,
        };
        let matching: Vec<u64> = records
            .iter()
            .filter(|r| r.dims == [0])
            .map(|r| r.payload[0])
            .collect();
        let sum: u64 = matching.iter().sum();
        let min = matching.iter().copied().min();
        let max = matching.iter().copied().max();

        let run = |agg: Aggregate| {
            system
                .range_query(
                    &user,
                    &Query { aggregate: agg, predicate: predicate.clone() },
                    RangeOptions { method: RangeMethod::Ebpb, ..Default::default() },
                )
                .unwrap()
                .value
        };
        assert_eq!(run(Aggregate::Sum { attr: 0 }), crate::query::AnswerValue::Number(Some(sum)));
        assert_eq!(run(Aggregate::Min { attr: 0 }), crate::query::AnswerValue::Number(min));
        assert_eq!(run(Aggregate::Max { attr: 0 }), crate::query::AnswerValue::Number(max));
        match run(Aggregate::Average { attr: 0 }) {
            crate::query::AnswerValue::Ratio(Some(avg)) => {
                assert!((avg - sum as f64 / matching.len() as f64).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn point_query_rejects_range_predicate() {
        let (system, user, _) = setup(false);
        let query = Query {
            aggregate: Aggregate::Count,
            predicate: Predicate::Range {
                dims: Some(vec![1]),
                observation: None,
                time_start: 0,
                time_end: 100,
            },
        };
        assert!(matches!(
            system.point_query(&user, &query),
            Err(CoreError::InvalidQuery { .. })
        ));
    }
}
