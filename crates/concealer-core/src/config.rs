//! System configuration.

use serde::{Deserialize, Serialize};

/// Shape of the grid Algorithm 1 builds over the indexed attributes and
/// time (the paper's `x × y` grid with `u` cell-ids).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridShape {
    /// Number of hash buckets for each indexed attribute. The WiFi
    /// deployment in the paper uses a single attribute (location) with 490
    /// buckets; the TPC-H 4-D index uses `[1500, 100, 10, 7]`.
    pub dim_buckets: Vec<u64>,
    /// Number of time subintervals per epoch (the paper's `y`; 16,000 for
    /// the WiFi grid).
    pub time_subintervals: u64,
    /// Number of cell-ids allocated over the grid (the paper's `u`, e.g.
    /// 87,000). Must be at least 1 and at most the number of grid cells.
    pub num_cell_ids: u32,
}

impl GridShape {
    /// Total number of grid cells (`x × y` in the paper's notation,
    /// generalized to the product of all dimension bucket counts times the
    /// time subintervals).
    #[must_use]
    pub fn total_cells(&self) -> u64 {
        self.dim_buckets.iter().product::<u64>() * self.time_subintervals
    }

    /// Number of indexed (non-time) attributes.
    #[must_use]
    pub fn num_dims(&self) -> usize {
        self.dim_buckets.len()
    }
}

/// How the data provider generates fake tuples (§3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FakeTupleStrategy {
    /// "Equal number of real and fake rows": ship one fake tuple per real
    /// tuple. Simple, always sufficient (Theorem 4.1), but ships the most
    /// fakes.
    EqualRealFake,
    /// "Simulate the bin-creation method": run the bin-packing algorithm at
    /// DP and ship exactly the number of fakes needed to pad every bin to
    /// the common bin size. Never ships more fakes than
    /// [`FakeTupleStrategy::EqualRealFake`].
    SimulateBins,
}

/// Top-level configuration of a Concealer deployment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Grid shape used by Algorithm 1.
    pub grid: GridShape,
    /// Epoch duration in seconds (the paper batches data into epochs whose
    /// length is chosen from the service provider's latency needs).
    pub epoch_duration: u64,
    /// Granularity (seconds) at which timestamps appear in filter columns.
    /// Query filters are generated per granule, so coarser granularity means
    /// fewer string-matching tokens per range query.
    pub time_granularity: u64,
    /// Fake-tuple generation strategy.
    pub fake_strategy: FakeTupleStrategy,
    /// Whether DP attaches hash-chain tags and the enclave verifies them.
    pub verify_integrity: bool,
    /// Whether the enclave uses the oblivious (Concealer+) code paths.
    pub oblivious: bool,
    /// winSecRange interval length, expressed in grid time rows (the paper
    /// fixes λ, e.g. 8 hours for the small dataset and ~1 day for the large
    /// one).
    pub winsec_rows_per_interval: u64,
}

impl SystemConfig {
    /// A small configuration suitable for unit tests and examples.
    #[must_use]
    pub fn small_test() -> Self {
        SystemConfig {
            grid: GridShape {
                dim_buckets: vec![8],
                time_subintervals: 8,
                num_cell_ids: 24,
            },
            epoch_duration: 3_600,
            time_granularity: 60,
            fake_strategy: FakeTupleStrategy::SimulateBins,
            verify_integrity: true,
            oblivious: false,
            winsec_rows_per_interval: 2,
        }
    }

    /// Duration in seconds covered by one grid time row.
    #[must_use]
    pub fn seconds_per_time_row(&self) -> u64 {
        (self.epoch_duration / self.grid.time_subintervals).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_cells_product() {
        let g = GridShape {
            dim_buckets: vec![490],
            time_subintervals: 16_000,
            num_cell_ids: 87_000,
        };
        assert_eq!(g.total_cells(), 490 * 16_000);
        assert_eq!(g.num_dims(), 1);

        let g4 = GridShape {
            dim_buckets: vec![1500, 100, 10, 7],
            time_subintervals: 1,
            num_cell_ids: 87_000,
        };
        assert_eq!(g4.total_cells(), 1500 * 100 * 10 * 7);
        assert_eq!(g4.num_dims(), 4);
    }

    #[test]
    fn seconds_per_time_row() {
        let mut c = SystemConfig::small_test();
        c.epoch_duration = 3600;
        c.grid.time_subintervals = 60;
        assert_eq!(c.seconds_per_time_row(), 60);
        c.grid.time_subintervals = 7200;
        assert_eq!(c.seconds_per_time_row(), 1, "never rounds down to zero");
    }
}
