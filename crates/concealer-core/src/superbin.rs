//! Super-bins: defending against query-workload attacks (§8 of the paper).
//!
//! Even with identically-sized bins, bins that cover *more distinct
//! queryable values* are retrieved more often under a uniform query
//! workload, which leaks how many distinct values each bin holds
//! (Example 8.1). The fix is to group bins into `f` **super-bins** whose
//! total number of distinct values is as balanced as possible, and to fetch
//! the whole super-bin whenever any of its bins is needed — the retrieval
//! frequencies of super-bins are then nearly uniform.
//!
//! The "number of distinct values" of a bin is, in grid terms, the number of
//! grid cells whose cell-id belongs to the bin: a query for any attribute
//! value hashing into one of those cells retrieves this bin.

use serde::{Deserialize, Serialize};

use crate::bins::BinPlan;

/// A grouping of bins into super-bins.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuperBinPlan {
    /// `super_bins[s]` lists the bin indices grouped into super-bin `s`.
    pub super_bins: Vec<Vec<usize>>,
    /// `bin_to_super[b]` is the super-bin that contains bin `b`.
    pub bin_to_super: Vec<usize>,
    /// The per-bin weights (distinct-value counts) the plan balanced.
    pub bin_weights: Vec<u64>,
}

impl SuperBinPlan {
    /// Build a super-bin plan.
    ///
    /// * `bin_plan` — the BPB bin plan.
    /// * `cells_per_cell_id[cid]` — how many grid cells were assigned
    ///   cell-id `cid` (the enclave computes this from the decrypted
    ///   `cell_id[]` vector).
    /// * `num_super_bins` — the paper's `f`; clamped to `[1, #bins]`.
    ///
    /// The construction follows §8: sort bins by decreasing weight, seed
    /// each super-bin with one of the `f` heaviest bins, then repeatedly
    /// give the next-heaviest bin to the super-bin with the smallest total
    /// weight among those with the fewest bins (keeping super-bin sizes
    /// within one of each other).
    #[must_use]
    pub fn build(bin_plan: &BinPlan, cells_per_cell_id: &[u32], num_super_bins: usize) -> Self {
        let num_bins = bin_plan.num_bins();
        let bin_weights: Vec<u64> = bin_plan
            .bins
            .iter()
            .map(|bin| {
                bin.cell_ids
                    .iter()
                    .map(|&cid| {
                        u64::from(cells_per_cell_id.get(cid as usize).copied().unwrap_or(0))
                    })
                    .sum()
            })
            .collect();

        if num_bins == 0 {
            return SuperBinPlan {
                super_bins: Vec::new(),
                bin_to_super: Vec::new(),
                bin_weights,
            };
        }
        let f = num_super_bins.clamp(1, num_bins);

        let mut order: Vec<usize> = (0..num_bins).collect();
        order.sort_by_key(|&b| std::cmp::Reverse(bin_weights[b]));

        let mut super_bins: Vec<Vec<usize>> = vec![Vec::new(); f];
        let mut totals: Vec<u64> = vec![0; f];
        let mut bin_to_super = vec![0usize; num_bins];

        for (rank, &bin) in order.iter().enumerate() {
            let target = if rank < f {
                // Seeding round: the f heaviest bins each start a super-bin.
                rank
            } else {
                // Among the super-bins with the minimum bin count, pick the
                // one with the smallest accumulated weight.
                let min_len = super_bins.iter().map(Vec::len).min().unwrap_or(0);
                (0..f)
                    .filter(|&s| super_bins[s].len() == min_len)
                    .min_by_key(|&s| totals[s])
                    .unwrap_or(0)
            };
            super_bins[target].push(bin);
            totals[target] += bin_weights[bin];
            bin_to_super[bin] = target;
        }

        SuperBinPlan {
            super_bins,
            bin_to_super,
            bin_weights,
        }
    }

    /// Number of super-bins.
    #[must_use]
    pub fn num_super_bins(&self) -> usize {
        self.super_bins.len()
    }

    /// The super-bin containing a bin.
    #[must_use]
    pub fn super_of_bin(&self, bin: usize) -> Option<usize> {
        self.bin_to_super.get(bin).copied()
    }

    /// All bins fetched when `bin` is requested (its whole super-bin).
    #[must_use]
    pub fn fetch_set_for_bin(&self, bin: usize) -> &[usize] {
        match self.super_of_bin(bin) {
            Some(s) => &self.super_bins[s],
            None => &[],
        }
    }

    /// Expected retrieval frequency of each super-bin under a uniform query
    /// workload (each distinct value queried once): the sum of its bins'
    /// weights.
    #[must_use]
    pub fn retrieval_frequencies(&self) -> Vec<u64> {
        self.super_bins
            .iter()
            .map(|bins| bins.iter().map(|&b| self.bin_weights[b]).sum())
            .collect()
    }

    /// The max/min ratio of super-bin retrieval frequencies; 1.0 is
    /// perfectly balanced. Returns `f64::INFINITY` when some super-bin would
    /// never be retrieved.
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        let freqs = self.retrieval_frequencies();
        let max = freqs.iter().copied().max().unwrap_or(0);
        let min = freqs.iter().copied().min().unwrap_or(0);
        if min == 0 {
            if max == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            max as f64 / min as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bins::{BinPlan, PackingAlgorithm};
    use proptest::prelude::*;

    /// Build a bin plan whose bins end up with controllable weights by
    /// giving every cell-id the same tuple count (so FFD packs a fixed
    /// number of cell-ids per bin) and assigning cells-per-cell-id directly.
    fn plan_with_weights(num_cell_ids: usize) -> BinPlan {
        let c_tuple = vec![10u32; num_cell_ids];
        BinPlan::build(&c_tuple, PackingAlgorithm::FirstFitDecreasing, Some(30))
    }

    #[test]
    fn paper_example_8_1_balancing() {
        // 12 bins with unique-value counts 1,2,9,1,2,10,1,1,1,8,2,7 and f=4
        // super-bins: the paper's grouping achieves frequencies 12,12,11,10.
        // Our greedy achieves the same multiset of totals (order may differ).
        let weights = [1u64, 2, 9, 1, 2, 10, 1, 1, 1, 8, 2, 7];
        // Build a synthetic plan with 12 bins of one cell-id each.
        let c_tuple = vec![5u32; 12];
        let plan = BinPlan::build(&c_tuple, PackingAlgorithm::FirstFitDecreasing, Some(5));
        assert_eq!(plan.num_bins(), 12);
        // cells_per_cell_id keyed by cell-id: bin i holds exactly one
        // cell-id, so map that cell-id to the example's weight.
        let mut cells_per_cid = vec![0u32; 12];
        for (i, bin) in plan.bins.iter().enumerate() {
            cells_per_cid[bin.cell_ids[0] as usize] = weights[i] as u32;
        }
        let sb = SuperBinPlan::build(&plan, &cells_per_cid, 4);
        let mut freqs = sb.retrieval_frequencies();
        freqs.sort_unstable();
        assert_eq!(freqs.iter().sum::<u64>(), 45);
        assert!(sb.imbalance() <= 1.3, "frequencies {freqs:?} not balanced");
        // Every super-bin has exactly 3 bins.
        assert!(sb.super_bins.iter().all(|b| b.len() == 3));
    }

    #[test]
    fn every_bin_in_exactly_one_super_bin() {
        let plan = plan_with_weights(30);
        let cells: Vec<u32> = (0..30).map(|i| (i % 7 + 1) as u32).collect();
        let sb = SuperBinPlan::build(&plan, &cells, 4);
        let mut seen = vec![0usize; plan.num_bins()];
        for bins in &sb.super_bins {
            for &b in bins {
                seen[b] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
        for b in 0..plan.num_bins() {
            assert!(sb.fetch_set_for_bin(b).contains(&b));
        }
    }

    #[test]
    fn f_clamped_to_bin_count() {
        let plan = plan_with_weights(6);
        let cells = vec![1u32; 6];
        let sb = SuperBinPlan::build(&plan, &cells, 100);
        assert!(sb.num_super_bins() <= plan.num_bins());
        let sb1 = SuperBinPlan::build(&plan, &cells, 0);
        assert_eq!(sb1.num_super_bins(), 1);
    }

    #[test]
    fn empty_plan() {
        let plan = BinPlan::build(&[], PackingAlgorithm::FirstFitDecreasing, None);
        let sb = SuperBinPlan::build(&plan, &[], 4);
        assert_eq!(sb.num_super_bins(), 0);
        assert_eq!(sb.imbalance(), 1.0);
        assert!(sb.fetch_set_for_bin(3).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Super-binning always reduces (or preserves) the retrieval
        /// frequency imbalance compared to fetching bins individually.
        #[test]
        fn prop_balances_within_factor(
            weights in proptest::collection::vec(1u32..50, 8..40),
            f in 2usize..6,
        ) {
            let c_tuple = vec![5u32; weights.len()];
            let plan = BinPlan::build(&c_tuple, PackingAlgorithm::FirstFitDecreasing, Some(5));
            prop_assume!(plan.num_bins() == weights.len());
            let mut cells = vec![0u32; weights.len()];
            for (i, bin) in plan.bins.iter().enumerate() {
                cells[bin.cell_ids[0] as usize] = weights[i];
            }
            let sb = SuperBinPlan::build(&plan, &cells, f);
            let per_bin_max = *weights.iter().max().unwrap() as f64;
            let per_bin_min = *weights.iter().min().unwrap() as f64;
            let raw_imbalance = per_bin_max / per_bin_min;
            prop_assert!(sb.imbalance() <= raw_imbalance + 1e-9,
                "super-bin imbalance {} worse than raw {}", sb.imbalance(), raw_imbalance);
            // And the greedy should keep super-bin sizes within one bin.
            let sizes: Vec<usize> = sb.super_bins.iter().map(Vec::len).collect();
            let max_s = *sizes.iter().max().unwrap();
            let min_s = *sizes.iter().min().unwrap();
            prop_assert!(max_s - min_s <= 1);
        }
    }
}
