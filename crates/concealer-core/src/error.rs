//! Error type for the Concealer core library.

use std::fmt;

/// Errors raised by the Concealer core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A record's attributes did not match the configured grid shape.
    SchemaMismatch {
        /// What was expected.
        expected: usize,
        /// What the record carried.
        got: usize,
    },
    /// A record's timestamp fell outside its epoch window.
    TimeOutOfEpoch {
        /// The record timestamp.
        time: u64,
        /// Epoch start.
        epoch_start: u64,
        /// Epoch end (exclusive).
        epoch_end: u64,
    },
    /// The query referenced an epoch (time range) for which no data was
    /// ingested.
    NoDataForRange,
    /// Integrity verification failed: the fetched tuples do not match the
    /// data provider's verifiable tags.
    IntegrityViolation {
        /// Which cell-id failed verification.
        cell_id: u32,
    },
    /// The query predicate is incompatible with the aggregate (for example a
    /// top-k over a point predicate).
    InvalidQuery {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// Metadata vectors shipped by the data provider could not be decoded.
    CorruptMetadata,
    /// A deployment was configured inconsistently (builder misuse, bad
    /// environment hook value, …).
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// Error from the cryptographic substrate.
    Crypto(concealer_crypto::CryptoError),
    /// Error from the storage substrate.
    Storage(concealer_storage::StorageError),
    /// Error from the enclave (authentication / authorization).
    Enclave(concealer_enclave::EnclaveError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::SchemaMismatch { expected, got } => {
                write!(
                    f,
                    "schema mismatch: expected {expected} grid attributes, got {got}"
                )
            }
            CoreError::TimeOutOfEpoch {
                time,
                epoch_start,
                epoch_end,
            } => write!(
                f,
                "timestamp {time} outside epoch window [{epoch_start}, {epoch_end})"
            ),
            CoreError::NoDataForRange => write!(f, "no ingested epoch overlaps the queried range"),
            CoreError::IntegrityViolation { cell_id } => {
                write!(f, "integrity verification failed for cell-id {cell_id}")
            }
            CoreError::InvalidQuery { reason } => write!(f, "invalid query: {reason}"),
            CoreError::CorruptMetadata => write!(f, "corrupt epoch metadata"),
            CoreError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            CoreError::Crypto(e) => write!(f, "crypto error: {e}"),
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::Enclave(e) => write!(f, "enclave error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<concealer_crypto::CryptoError> for CoreError {
    fn from(e: concealer_crypto::CryptoError) -> Self {
        CoreError::Crypto(e)
    }
}

impl From<concealer_storage::StorageError> for CoreError {
    fn from(e: concealer_storage::StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<concealer_enclave::EnclaveError> for CoreError {
    fn from(e: concealer_enclave::EnclaveError) -> Self {
        CoreError::Enclave(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::SchemaMismatch {
            expected: 2,
            got: 3
        }
        .to_string()
        .contains('3'));
        assert!(CoreError::NoDataForRange
            .to_string()
            .contains("no ingested epoch"));
        assert!(CoreError::IntegrityViolation { cell_id: 4 }
            .to_string()
            .contains('4'));
        assert!(CoreError::InvalidConfig {
            reason: "bad backend".into()
        }
        .to_string()
        .contains("bad backend"));
        let e: CoreError = concealer_storage::StorageError::DuplicateKey.into();
        assert!(e.to_string().contains("storage error"));
        let e: CoreError = concealer_crypto::CryptoError::AuthenticationFailed.into();
        assert!(e.to_string().contains("crypto error"));
        let e: CoreError = concealer_enclave::EnclaveError::UnknownUser.into();
        assert!(e.to_string().contains("enclave error"));
    }
}
