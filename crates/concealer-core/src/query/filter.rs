//! In-enclave filtering and aggregation of fetched bins (Step 4 of the BPB
//! method, §4.2–§4.3).
//!
//! A fetched bin contains every tuple of several cell-ids plus fake
//! padding; only some of those tuples satisfy the actual query predicate.
//! The enclave therefore:
//!
//! 1. builds the *filter tokens* — deterministic ciphertexts of the
//!    predicate values concatenated with each time granule in the queried
//!    range (`E_k(l||t)`, `E_k(o||t)`), exactly mirroring what the data
//!    provider stored in the filter columns,
//! 2. string-matches every fetched row's filter columns against the token
//!    set (no decryption),
//! 3. decrypts the payload column only for rows that the aggregate actually
//!    needs values from (counts never decrypt; sums/min/max/top-k decrypt
//!    matching rows only).
//!
//! The *oblivious* variant (Concealer+) touches every row and every token
//! unconditionally, accumulates matches branch-free, decrypts every row when
//! any decryption is needed, and reports its work to the
//! [`SideChannelMeter`] so indistinguishability is testable.

use std::collections::HashSet;
use std::sync::OnceLock;

use concealer_crypto::EpochKey;
use concealer_enclave::oblivious::{oadd_if, oeq, omove};
use concealer_enclave::{MeterSnapshot, SideChannelMeter};
use concealer_storage::EncryptedRow;

use crate::codec;
use crate::config::SystemConfig;
use crate::query::{Accumulator, Aggregate, Predicate};
use crate::types::EpochWindow;
use crate::Result;

/// The filter tokens and residual (post-decryption) checks for one query on
/// one epoch.
#[derive(Debug, Clone)]
pub struct FilterPlan {
    /// Tokens matched against the dimension filter column. Empty when the
    /// predicate does not pin the indexed attributes.
    pub dim_tokens: HashSet<Vec<u8>>,
    /// Tokens matched against the observation filter column. Empty when the
    /// predicate does not pin an observation.
    pub obs_tokens: HashSet<Vec<u8>>,
    /// Inclusive time range every matching tuple must fall in (residual
    /// check applied after decryption when no token filter constrains the
    /// row).
    pub time_range: (u64, u64),
    /// Observation value residual check (when the row must be decrypted
    /// anyway).
    pub observation: Option<u64>,
    /// Whether token matching alone decides membership (true when the
    /// predicate pins the indexed attributes or the observation).
    pub token_decides: bool,
}

/// One row's decoded payload: `(dims, time, payload)` as stored by the
/// provider.
pub type DecodedRow = (Vec<u64>, u64, Vec<u64>);

/// Per-row payload decode cache for one fetched bin.
///
/// Payload decryption is the dominant per-row cost of the filter stage, and
/// a batch frequently runs several queries over the same fetched bin. The
/// cache memoizes each row's decode outcome — `Some((dims, time, payload))`
/// for a successfully authenticated row, `None` for a volume-hiding fake
/// (whose payload fails authentication by design) — so the second query
/// over a bin decrypts nothing.
///
/// The cache changes no observable behaviour: the side-channel meter's
/// `decryptions` counter is driven by the *processing schedule* (which rows
/// the variant would decrypt), not by whether the cache already holds the
/// plaintext, so metered counts are identical warm and cold. Slots are
/// [`OnceLock`]s, making concurrent filling from parallel per-query
/// aggregation tasks safe. Decode *errors* (a corrupt but authentic
/// payload) are deliberately not cached: they propagate to the caller and
/// re-surface on every retry.
#[derive(Debug, Default)]
pub struct DecodedBin {
    slots: Vec<OnceLock<Option<DecodedRow>>>,
}

impl DecodedBin {
    /// An empty cache for a bin of `rows` rows.
    #[must_use]
    pub fn new(rows: usize) -> Self {
        DecodedBin {
            slots: (0..rows).map(|_| OnceLock::new()).collect(),
        }
    }

    /// The memoized decode of row `idx`, computing it on first use.
    /// `Ok(None)` marks a fake row (payload authentication failed).
    fn get_or_decode(
        &self,
        idx: usize,
        key: &EpochKey,
        row: &EncryptedRow,
    ) -> Result<Option<&DecodedRow>> {
        let slot = &self.slots[idx];
        if let Some(cached) = slot.get() {
            return Ok(cached.as_ref());
        }
        let computed = match key.det.decrypt(&row.payload) {
            Err(_) => None, // fake tuple: fails authentication by design
            Ok(plain) => Some(codec::decode_payload_plain(&plain)?),
        };
        Ok(slot.get_or_init(|| computed).as_ref())
    }
}

/// Build the filter plan for a predicate against one epoch window.
#[must_use]
pub fn build_filter_plan(
    key: &EpochKey,
    config: &SystemConfig,
    predicate: &Predicate,
    window: EpochWindow,
) -> FilterPlan {
    let (t_start, t_end) = predicate.time_span();
    let lo = t_start.max(window.start);
    let hi = t_end.min(window.end().saturating_sub(1));
    let g = config.time_granularity.max(1);

    let mut dim_tokens = HashSet::new();
    let mut obs_tokens = HashSet::new();

    if lo <= hi {
        let first_granule = lo / g;
        let last_granule = hi / g;
        if let Some(dims) = predicate.dims() {
            for granule in first_granule..=last_granule {
                dim_tokens.insert(key.det.encrypt(&codec::filter_dims_plain(dims, granule)));
            }
        }
        if let Some(obs) = predicate.observation() {
            for granule in first_granule..=last_granule {
                obs_tokens.insert(key.det.encrypt(&codec::filter_obs_plain(obs, granule)));
            }
        }
    }

    let token_decides = !dim_tokens.is_empty() || !obs_tokens.is_empty();
    FilterPlan {
        dim_tokens,
        obs_tokens,
        time_range: (t_start, t_end),
        observation: predicate.observation(),
        token_decides,
    }
}

/// Filter and aggregate the rows of one fetched bin (plain variant).
///
/// The metered `decryptions` count follows the processing schedule — one
/// per row the plain variant decrypts — whether or not `decoded` already
/// holds the plaintext, so warm and cold executions meter identically.
pub fn process_rows_plain(
    key: &EpochKey,
    plan: &FilterPlan,
    aggregate: &Aggregate,
    rows: &[EncryptedRow],
    decoded: &DecodedBin,
    meter: &SideChannelMeter,
) -> Result<(Accumulator, usize)> {
    let mut acc = Accumulator::default();
    let mut decrypted = 0usize;
    // Counters are accumulated locally and flushed once per call so the
    // shared meter mutex is not taken per row (see
    // `SideChannelMeter::add_snapshot`).
    let mut ops = MeterSnapshot::default();

    for (idx, row) in rows.iter().enumerate() {
        // Fake tuples never match any token and their payloads are not
        // decryptable; skip them cheaply by token mismatch / decrypt error.
        let token_match = row_matches_tokens(plan, row);
        if plan.token_decides {
            if !token_match {
                continue;
            }
            if !aggregate.needs_decryption() {
                acc.count += 1;
                continue;
            }
        }
        // Need the payload: either the aggregate requires values, or the
        // predicate could not be decided by tokens alone.
        let slot = match decoded.get_or_decode(idx, key, row) {
            Ok(slot) => slot,
            Err(e) => {
                // The decryption preceding the failed decode did succeed;
                // flush the counters accumulated so far — the work *was*
                // performed, and the meter is the side-channel model the
                // security tests reason about.
                ops.decryptions += 1;
                meter.add_snapshot(ops);
                return Err(e);
            }
        };
        let Some((dims, time, payload)) = slot else {
            continue; // fake tuple
        };
        decrypted += 1;
        ops.decryptions += 1;
        if !plan.token_decides {
            if *time < plan.time_range.0 || *time > plan.time_range.1 {
                continue;
            }
            if let Some(obs) = plan.observation {
                if payload.first().copied() != Some(obs) {
                    continue;
                }
            }
        }
        fold_record(&mut acc, aggregate, dims, payload);
    }
    meter.add_snapshot(ops);
    Ok((acc, decrypted))
}

/// Filter and aggregate obliviously (Concealer+): every row and every token
/// is touched; the number of decryptions equals the number of rows whenever
/// any decryption is needed at all.
pub fn process_rows_oblivious(
    key: &EpochKey,
    plan: &FilterPlan,
    aggregate: &Aggregate,
    rows: &[EncryptedRow],
    decoded: &DecodedBin,
    meter: &SideChannelMeter,
) -> Result<(Accumulator, usize)> {
    let mut acc = Accumulator::default();
    let mut decrypted = 0usize;
    let needs_payload = aggregate.needs_decryption() || !plan.token_decides;
    // Accumulated locally, flushed once per call — the computation *shape*
    // recorded is unchanged, but the shared mutex is not taken per row or
    // per token (see `SideChannelMeter::add_snapshot`).
    let mut ops = MeterSnapshot::default();

    for (idx, row) in rows.iter().enumerate() {
        ops.element_touches += 1;
        // Branch-free token matching: compare against every token.
        let mut dim_match = 0u64;
        for token in &plan.dim_tokens {
            ops.comparisons += 1;
            dim_match = omove(bytes_eq_flag(token, &row.filters[0]), 1, dim_match);
        }
        let mut obs_match = 0u64;
        for token in &plan.obs_tokens {
            ops.comparisons += 1;
            obs_match = omove(bytes_eq_flag(token, &row.filters[1]), 1, obs_match);
        }
        let dim_ok = if plan.dim_tokens.is_empty() {
            1
        } else {
            dim_match
        };
        let obs_ok = if plan.obs_tokens.is_empty() {
            1
        } else {
            obs_match
        };
        let mut matched = dim_ok & obs_ok;

        if needs_payload {
            // Every row is decrypted regardless of the match flag; the
            // count is per-schedule, so a decode-cache hit meters the same.
            decrypted += 1;
            ops.decryptions += 1;
            let slot = match decoded.get_or_decode(idx, key, row) {
                Ok(slot) => slot,
                Err(e) => {
                    meter.add_snapshot(ops);
                    return Err(e);
                }
            };
            let Some((dims, time, payload)) = slot else {
                // Fake rows fail authentication; they contribute nothing but
                // the work above was already constant.
                continue;
            };
            if !plan.token_decides {
                let in_range = u64::from(*time >= plan.time_range.0 && *time <= plan.time_range.1);
                let obs_ok = match plan.observation {
                    Some(obs) => oeq(payload.first().copied().unwrap_or(u64::MAX), obs),
                    None => 1,
                };
                matched = in_range & obs_ok;
            }
            ops.cmoves += 4;
            fold_record_oblivious(&mut acc, aggregate, dims, payload, matched);
        } else {
            ops.cmoves += 1;
            acc.count = oadd_if(matched, acc.count, 1);
        }
    }
    meter.add_snapshot(ops);
    Ok((acc, decrypted))
}

/// Whether a row's filter columns satisfy the token sets (plain variant —
/// early exits are fine here because this path assumes a side-channel-free
/// enclave).
fn row_matches_tokens(plan: &FilterPlan, row: &EncryptedRow) -> bool {
    let dim_ok = plan.dim_tokens.is_empty() || plan.dim_tokens.contains(&row.filters[0]);
    let obs_ok = plan.obs_tokens.is_empty() || plan.obs_tokens.contains(&row.filters[1]);
    dim_ok && obs_ok
}

/// Constant-shape byte equality: accumulates a difference mask over the full
/// length and returns 1 when equal.
fn bytes_eq_flag(a: &[u8], b: &[u8]) -> u64 {
    if a.len() != b.len() {
        // Lengths are public (all ciphertexts in a column share a width), so
        // branching on them is not a leak.
        return 0;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    oeq(u64::from(diff), 0)
}

fn fold_record(acc: &mut Accumulator, aggregate: &Aggregate, dims: &[u64], payload: &[u64]) {
    acc.count += 1;
    let attr = aggregate_attr(aggregate);
    let value = payload.get(attr).copied().unwrap_or(0);
    acc.sum = acc.sum.wrapping_add(value);
    acc.min = Some(acc.min.map_or(value, |m| m.min(value)));
    acc.max = Some(acc.max.map_or(value, |m| m.max(value)));
    if matches!(
        aggregate,
        Aggregate::TopKLocations { .. } | Aggregate::LocationsWithAtLeast { .. }
    ) {
        *acc.per_location
            .entry(dims.first().copied().unwrap_or(0))
            .or_insert(0) += 1;
    }
    if matches!(aggregate, Aggregate::CollectRows) {
        acc.rows.push(crate::types::Record {
            dims: dims.to_vec(),
            time: 0, // time is re-attached by the caller when needed
            payload: payload.to_vec(),
        });
    }
}

fn fold_record_oblivious(
    acc: &mut Accumulator,
    aggregate: &Aggregate,
    dims: &[u64],
    payload: &[u64],
    matched: u64,
) {
    acc.count = oadd_if(matched, acc.count, 1);
    let attr = aggregate_attr(aggregate);
    let value = payload.get(attr).copied().unwrap_or(0);
    acc.sum = oadd_if(matched, acc.sum, value);
    let cur_min = acc.min.unwrap_or(u64::MAX);
    let cur_max = acc.max.unwrap_or(0);
    let new_min = omove(matched, cur_min.min(value), cur_min);
    let new_max = omove(matched, cur_max.max(value), cur_max);
    if acc.count > 0 {
        acc.min = Some(new_min);
        acc.max = Some(new_max);
    }
    if matches!(
        aggregate,
        Aggregate::TopKLocations { .. } | Aggregate::LocationsWithAtLeast { .. }
    ) && matched == 1
    {
        *acc.per_location
            .entry(dims.first().copied().unwrap_or(0))
            .or_insert(0) += 1;
    }
    if matches!(aggregate, Aggregate::CollectRows) && matched == 1 {
        acc.rows.push(crate::types::Record {
            dims: dims.to_vec(),
            time: 0,
            payload: payload.to_vec(),
        });
    }
}

fn aggregate_attr(aggregate: &Aggregate) -> usize {
    match aggregate {
        Aggregate::Sum { attr }
        | Aggregate::Min { attr }
        | Aggregate::Max { attr }
        | Aggregate::Average { attr } => *attr,
        _ => 0,
    }
}

/// Re-attach exact timestamps to collected rows by decoding the payload
/// plaintext again — helper for the engine's `CollectRows` path.
pub fn decode_time(key: &EpochKey, row: &EncryptedRow) -> Option<u64> {
    let plain = key.det.decrypt(&row.payload).ok()?;
    codec::decode_payload_plain(&plain).ok().map(|(_, t, _)| t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use concealer_crypto::{EpochId, MasterKey};

    fn key() -> EpochKey {
        MasterKey::from_bytes([6u8; 32]).epoch_key(EpochId(0), 0)
    }

    fn config() -> SystemConfig {
        SystemConfig::small_test()
    }

    fn window() -> EpochWindow {
        EpochWindow {
            start: 0,
            duration: 3600,
        }
    }

    /// Encrypt a row exactly the way the provider does.
    fn real_row(key: &EpochKey, loc: u64, time: u64, obs: u64) -> EncryptedRow {
        let granule = time / config().time_granularity;
        EncryptedRow {
            index_key: key.det.encrypt(&codec::index_real_plain(0, 1)),
            filters: vec![
                key.det.encrypt(&codec::filter_dims_plain(&[loc], granule)),
                key.det.encrypt(&codec::filter_obs_plain(obs, granule)),
            ],
            payload: key.det.encrypt(&codec::payload_plain(&[loc], time, &[obs])),
        }
    }

    fn fake_row(key: &EpochKey) -> EncryptedRow {
        EncryptedRow {
            index_key: key.det.encrypt(&codec::index_fake_plain(1)),
            filters: vec![vec![0u8; 41], vec![0u8; 33]],
            payload: vec![0u8; 60],
        }
    }

    #[test]
    fn count_matches_without_decryption() {
        let key = key();
        let meter = SideChannelMeter::new();
        let rows = vec![
            real_row(&key, 3, 100, 9),
            real_row(&key, 3, 200, 9),
            real_row(&key, 4, 100, 9),
            fake_row(&key),
        ];
        let predicate = Predicate::Range {
            dims: Some(vec![3]),
            observation: None,
            time_start: 0,
            time_end: 3599,
        };
        let plan = build_filter_plan(&key, &config(), &predicate, window());
        let (acc, decrypted) = process_rows_plain(
            &key,
            &plan,
            &Aggregate::Count,
            &rows,
            &DecodedBin::new(rows.len()),
            &meter,
        )
        .unwrap();
        assert_eq!(acc.count, 2);
        assert_eq!(decrypted, 0, "count queries must not decrypt");
    }

    #[test]
    fn sum_decrypts_only_matching_rows() {
        let key = key();
        let meter = SideChannelMeter::new();
        let rows = vec![
            real_row(&key, 3, 100, 10),
            real_row(&key, 3, 200, 20),
            real_row(&key, 5, 100, 99),
            fake_row(&key),
        ];
        let predicate = Predicate::Range {
            dims: Some(vec![3]),
            observation: None,
            time_start: 0,
            time_end: 3599,
        };
        let plan = build_filter_plan(&key, &config(), &predicate, window());
        let (acc, decrypted) = process_rows_plain(
            &key,
            &plan,
            &Aggregate::Sum { attr: 0 },
            &rows,
            &DecodedBin::new(rows.len()),
            &meter,
        )
        .unwrap();
        assert_eq!(acc.count, 2);
        assert_eq!(acc.sum, 30);
        assert_eq!(decrypted, 2);
    }

    #[test]
    fn observation_predicate_uses_obs_tokens() {
        let key = key();
        let meter = SideChannelMeter::new();
        let rows = vec![
            real_row(&key, 1, 100, 42),
            real_row(&key, 2, 150, 42),
            real_row(&key, 3, 100, 7),
        ];
        let predicate = Predicate::Range {
            dims: None,
            observation: Some(42),
            time_start: 0,
            time_end: 3599,
        };
        let plan = build_filter_plan(&key, &config(), &predicate, window());
        assert!(plan.dim_tokens.is_empty());
        assert!(!plan.obs_tokens.is_empty());
        let (acc, _) = process_rows_plain(
            &key,
            &plan,
            &Aggregate::Count,
            &rows,
            &DecodedBin::new(rows.len()),
            &meter,
        )
        .unwrap();
        assert_eq!(acc.count, 2);
    }

    #[test]
    fn unconstrained_dims_filters_on_decrypted_time() {
        let key = key();
        let meter = SideChannelMeter::new();
        let rows = vec![
            real_row(&key, 1, 100, 1),
            real_row(&key, 2, 2000, 1),
            real_row(&key, 3, 3599, 1),
        ];
        let predicate = Predicate::Range {
            dims: None,
            observation: None,
            time_start: 0,
            time_end: 1000,
        };
        let plan = build_filter_plan(&key, &config(), &predicate, window());
        assert!(!plan.token_decides);
        let (acc, decrypted) = process_rows_plain(
            &key,
            &plan,
            &Aggregate::TopKLocations { k: 5 },
            &rows,
            &DecodedBin::new(rows.len()),
            &meter,
        )
        .unwrap();
        assert_eq!(acc.count, 1);
        assert_eq!(decrypted, 3, "must decrypt everything to decide");
        assert_eq!(acc.per_location.get(&1), Some(&1));
    }

    #[test]
    fn oblivious_matches_plain_results() {
        let key = key();
        let meter = SideChannelMeter::new();
        let rows = vec![
            real_row(&key, 3, 100, 10),
            real_row(&key, 3, 200, 20),
            real_row(&key, 4, 100, 30),
            fake_row(&key),
        ];
        for aggregate in [
            Aggregate::Count,
            Aggregate::Sum { attr: 0 },
            Aggregate::Min { attr: 0 },
            Aggregate::Max { attr: 0 },
        ] {
            let predicate = Predicate::Range {
                dims: Some(vec![3]),
                observation: None,
                time_start: 0,
                time_end: 3599,
            };
            let plan = build_filter_plan(&key, &config(), &predicate, window());
            let (plain, _) = process_rows_plain(
                &key,
                &plan,
                &aggregate,
                &rows,
                &DecodedBin::new(rows.len()),
                &meter,
            )
            .unwrap();
            let (obliv, _) = process_rows_oblivious(
                &key,
                &plan,
                &aggregate,
                &rows,
                &DecodedBin::new(rows.len()),
                &meter,
            )
            .unwrap();
            assert_eq!(plain.count, obliv.count, "{aggregate:?}");
            assert_eq!(plain.sum, obliv.sum, "{aggregate:?}");
            assert_eq!(
                plain.clone().finish(&aggregate),
                obliv.clone().finish(&aggregate),
                "{aggregate:?}"
            );
        }
    }

    #[test]
    fn oblivious_decrypts_every_row_for_value_aggregates() {
        let key = key();
        let meter = SideChannelMeter::new();
        let rows = vec![
            real_row(&key, 3, 100, 10),
            real_row(&key, 9, 100, 20),
            real_row(&key, 9, 200, 30),
        ];
        let predicate = Predicate::Range {
            dims: Some(vec![3]),
            observation: None,
            time_start: 0,
            time_end: 3599,
        };
        let plan = build_filter_plan(&key, &config(), &predicate, window());
        let (_, decrypted) = process_rows_oblivious(
            &key,
            &plan,
            &Aggregate::Sum { attr: 0 },
            &rows,
            &DecodedBin::new(rows.len()),
            &meter,
        )
        .unwrap();
        assert_eq!(decrypted, 3);
    }

    #[test]
    fn oblivious_work_independent_of_predicate_selectivity() {
        let key = key();
        let meter = SideChannelMeter::new();
        let rows: Vec<EncryptedRow> = (0..20)
            .map(|i| real_row(&key, i % 4, 100 + i * 10, i))
            .collect();
        let mk_plan = |loc: u64| {
            build_filter_plan(
                &key,
                &config(),
                &Predicate::Point {
                    dims: vec![loc],
                    time: 100,
                },
                window(),
            )
        };
        let (_, d1) = meter.measure(|| {
            process_rows_oblivious(
                &key,
                &mk_plan(0),
                &Aggregate::Count,
                &rows,
                &DecodedBin::new(rows.len()),
                &meter,
            )
            .unwrap()
        });
        let (_, d2) = meter.measure(|| {
            process_rows_oblivious(
                &key,
                &mk_plan(3),
                &Aggregate::Count,
                &rows,
                &DecodedBin::new(rows.len()),
                &meter,
            )
            .unwrap()
        });
        assert_eq!(d1.element_touches, d2.element_touches);
        assert_eq!(d1.comparisons, d2.comparisons);
        assert_eq!(d1.decryptions, d2.decryptions);
    }

    #[test]
    fn decode_cache_reuse_preserves_answers_and_meter_counts() {
        let key = key();
        let meter = SideChannelMeter::new();
        let rows = vec![
            real_row(&key, 3, 100, 10),
            real_row(&key, 3, 200, 20),
            real_row(&key, 4, 100, 30),
            fake_row(&key),
        ];
        let predicate = Predicate::Range {
            dims: Some(vec![3]),
            observation: None,
            time_start: 0,
            time_end: 3599,
        };
        let plan = build_filter_plan(&key, &config(), &predicate, window());
        let shared = DecodedBin::new(rows.len());
        for variant in ["plain", "oblivious"] {
            let run = |decoded: &DecodedBin| {
                meter.measure(|| {
                    if variant == "plain" {
                        process_rows_plain(
                            &key,
                            &plan,
                            &Aggregate::Sum { attr: 0 },
                            &rows,
                            decoded,
                            &meter,
                        )
                        .unwrap()
                    } else {
                        process_rows_oblivious(
                            &key,
                            &plan,
                            &Aggregate::Sum { attr: 0 },
                            &rows,
                            decoded,
                            &meter,
                        )
                        .unwrap()
                    }
                })
            };
            let ((cold_acc, cold_d), cold_ops) = run(&shared);
            // Second pass over the same DecodedBin: every slot is already
            // filled, yet results and metered counters must be identical.
            let ((warm_acc, warm_d), warm_ops) = run(&shared);
            assert_eq!(cold_acc.count, warm_acc.count, "{variant}");
            assert_eq!(cold_acc.sum, warm_acc.sum, "{variant}");
            assert_eq!(cold_d, warm_d, "{variant}");
            assert_eq!(cold_ops, warm_ops, "{variant} meter counters");
            // And both match a cache-free execution.
            let ((fresh_acc, fresh_d), fresh_ops) = run(&DecodedBin::new(rows.len()));
            assert_eq!(fresh_acc.sum, warm_acc.sum, "{variant}");
            assert_eq!(fresh_d, warm_d, "{variant}");
            assert_eq!(fresh_ops, warm_ops, "{variant} meter counters");
        }
    }

    #[test]
    fn point_predicate_single_token() {
        let key = key();
        let plan = build_filter_plan(
            &key,
            &config(),
            &Predicate::Point {
                dims: vec![7],
                time: 120,
            },
            window(),
        );
        assert_eq!(plan.dim_tokens.len(), 1);
        assert!(plan.obs_tokens.is_empty());
        assert!(plan.token_decides);
    }

    #[test]
    fn range_outside_window_produces_no_tokens() {
        let key = key();
        let plan = build_filter_plan(
            &key,
            &config(),
            &Predicate::Range {
                dims: Some(vec![7]),
                observation: None,
                time_start: 10_000,
                time_end: 20_000,
            },
            window(),
        );
        assert!(plan.dim_tokens.is_empty());
    }
}
