//! Trapdoor generation (Step 3 of the BPB method, §4.2–§4.3 of the paper).
//!
//! A trapdoor is the deterministic ciphertext `E_k(cid || counter)` (or
//! `E_k(f || j)` for a fake tuple) that the DBMS index matches exactly. The
//! plain generator simply enumerates the needed plaintexts; the *oblivious*
//! generator (Concealer+) produces the same trapdoor set but via a
//! data-independent schedule: it always materializes
//! `#C_max × #max + #f_max` candidates with a validity flag, obliviously
//! sorts so valid candidates come first, and only then truncates — so the
//! enclave's memory/branch behaviour does not depend on which cell-ids the
//! bin actually holds.

use concealer_crypto::EpochKey;
use concealer_enclave::sort::bitonic_sort_by_key;
use concealer_enclave::SideChannelMeter;

use crate::codec;

/// Work items for trapdoor generation: which cell-ids (with their tuple
/// counts) and which fake-id range one fetch unit needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchSpec {
    /// `(cell_id, tuple_count)` pairs to fetch in full.
    pub cells: Vec<(u32, u32)>,
    /// Fake ids `[start, end)` to fetch.
    pub fake_range: (u64, u64),
}

impl FetchSpec {
    /// Total number of trapdoors this spec expands to.
    #[must_use]
    pub fn total_trapdoors(&self) -> u64 {
        let real: u64 = self.cells.iter().map(|(_, c)| u64::from(*c)).sum();
        real + (self.fake_range.1 - self.fake_range.0)
    }
}

/// Generate the trapdoors for a fetch spec the straightforward way
/// (Concealer without side-channel protection).
#[must_use]
pub fn generate_plain(key: &EpochKey, spec: &FetchSpec, meter: &SideChannelMeter) -> Vec<Vec<u8>> {
    let mut out = Vec::with_capacity(spec.total_trapdoors() as usize);
    for &(cid, count) in &spec.cells {
        for counter in 1..=count {
            out.push(key.det.encrypt(&codec::index_real_plain(cid, counter)));
        }
    }
    for fake in spec.fake_range.0..spec.fake_range.1 {
        out.push(key.det.encrypt(&codec::index_fake_plain(fake)));
    }
    meter.add_trapdoors(out.len() as u64);
    out
}

/// Generate the trapdoors for a fetch spec obliviously (Concealer+,
/// §4.3 Step 3).
///
/// * `max_cells` — `#C_max`, the maximum number of cell-ids any fetch unit
///   may contain.
/// * `max_per_cell` — `#max`, the maximum tuple count of any cell-id.
/// * `max_fakes` — `#f_max`, the maximum fake tuples any fetch unit needs.
///
/// The candidate schedule — and therefore the number of encryptions, the
/// sort network, and every memory touch — depends only on those public
/// maxima, never on the bin's actual content.
#[must_use]
pub fn generate_oblivious(
    key: &EpochKey,
    spec: &FetchSpec,
    max_cells: usize,
    max_per_cell: u32,
    max_fakes: u64,
    meter: &SideChannelMeter,
) -> Vec<Vec<u8>> {
    // Candidate = (validity flag v, trapdoor bytes). Real candidates are
    // generated for every (cell slot, counter slot) pair; slots beyond the
    // spec's actual content carry v = 0 and a dummy-but-well-formed
    // trapdoor.
    let mut candidates: Vec<(u64, Vec<u8>)> =
        Vec::with_capacity(max_cells * max_per_cell as usize + max_fakes as usize);

    for cell_slot in 0..max_cells {
        let (cid, count) = spec.cells.get(cell_slot).copied().unwrap_or((u32::MAX, 0));
        for counter in 1..=max_per_cell {
            let valid = u64::from(cell_slot < spec.cells.len() && counter <= count);
            // Dummy slots still encrypt a syntactically valid plaintext so
            // the work per slot is identical.
            let trapdoor = key.det.encrypt(&codec::index_real_plain(cid, counter));
            candidates.push((valid, trapdoor));
        }
    }

    let fake_count = spec.fake_range.1 - spec.fake_range.0;
    for j in 0..max_fakes {
        let valid = u64::from(j < fake_count);
        let fake_id = spec.fake_range.0 + (j % fake_count.max(1));
        let trapdoor = key.det.encrypt(&codec::index_fake_plain(fake_id));
        candidates.push((valid, trapdoor));
    }

    meter.add_trapdoors(candidates.len() as u64);
    meter.add_element_touches(candidates.len() as u64);

    // Data-independent sort: valid candidates (v = 1) first.
    bitonic_sort_by_key(&mut candidates, meter, |(v, _)| 1 - *v);

    let valid_total = spec.total_trapdoors() as usize;
    candidates.truncate(valid_total);
    candidates.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use concealer_crypto::{EpochId, MasterKey};

    fn key() -> EpochKey {
        MasterKey::from_bytes([4u8; 32]).epoch_key(EpochId(7), 0)
    }

    fn sorted(mut v: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        v.sort();
        v
    }

    #[test]
    fn plain_generates_expected_count() {
        let key = key();
        let meter = SideChannelMeter::new();
        let spec = FetchSpec {
            cells: vec![(1, 3), (5, 2)],
            fake_range: (10, 14),
        };
        let trapdoors = generate_plain(&key, &spec, &meter);
        assert_eq!(trapdoors.len(), 3 + 2 + 4);
        assert_eq!(spec.total_trapdoors(), 9);
        // All distinct.
        let set: std::collections::BTreeSet<&Vec<u8>> = trapdoors.iter().collect();
        assert_eq!(set.len(), 9);
        assert_eq!(meter.snapshot().trapdoors_generated, 9);
    }

    #[test]
    fn oblivious_generates_same_set_as_plain() {
        let key = key();
        let meter = SideChannelMeter::new();
        let spec = FetchSpec {
            cells: vec![(2, 4), (7, 1)],
            fake_range: (3, 6),
        };
        let plain = generate_plain(&key, &spec, &meter);
        let obliv = generate_oblivious(&key, &spec, 4, 6, 8, &meter);
        assert_eq!(sorted(plain), sorted(obliv));
    }

    #[test]
    fn oblivious_work_depends_only_on_maxima() {
        let key = key();
        let meter = SideChannelMeter::new();
        let spec_small = FetchSpec {
            cells: vec![(1, 1)],
            fake_range: (0, 1),
        };
        let spec_large = FetchSpec {
            cells: vec![(1, 5), (2, 5), (3, 5)],
            fake_range: (0, 4),
        };
        let (_, d1) = meter.measure(|| generate_oblivious(&key, &spec_small, 3, 5, 4, &meter));
        let (_, d2) = meter.measure(|| generate_oblivious(&key, &spec_large, 3, 5, 4, &meter));
        assert_eq!(d1.trapdoors_generated, d2.trapdoors_generated);
        assert_eq!(d1.sort_steps, d2.sort_steps);
        assert_eq!(d1.element_touches, d2.element_touches);
    }

    #[test]
    fn empty_spec() {
        let key = key();
        let meter = SideChannelMeter::new();
        let spec = FetchSpec {
            cells: vec![],
            fake_range: (0, 0),
        };
        assert!(generate_plain(&key, &spec, &meter).is_empty());
        assert!(generate_oblivious(&key, &spec, 2, 3, 2, &meter).is_empty());
    }

    #[test]
    fn trapdoors_match_provider_side_index_keys() {
        // The trapdoor for (cid, counter) must equal the Index ciphertext
        // the data provider stored — that is the whole point.
        let key = key();
        let stored = key.det.encrypt(&codec::index_real_plain(9, 2));
        let meter = SideChannelMeter::new();
        let spec = FetchSpec {
            cells: vec![(9, 2)],
            fake_range: (0, 0),
        };
        let trapdoors = generate_plain(&key, &spec, &meter);
        assert!(trapdoors.contains(&stored));
    }
}
