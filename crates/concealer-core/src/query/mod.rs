//! Query model: predicates, aggregates, answers.
//!
//! Concealer supports the limited OLAP-style query repertoire the paper's
//! Table 4 lists: aggregations (count, sum, min, max, average, top-k) with
//! predicates over the indexed attributes, the observation attribute, and a
//! time point or range. Queries fall into the paper's two application
//! classes: *aggregate* applications (occupancy, heat maps, top-k locations)
//! and *individualized* applications (a user's own past movements, keyed by
//! an observation/device id they own).

pub mod filter;
pub mod trapdoor;

use serde::{Deserialize, Serialize};

use crate::types::Record;

/// The selection predicate of a query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Predicate {
    /// Exact indexed-attribute values at an exact time instant
    /// (the paper's point query).
    Point {
        /// Values of the indexed attributes (e.g. `[location]`).
        dims: Vec<u64>,
        /// The time instant (seconds).
        time: u64,
    },
    /// A time-range query, optionally restricted to specific indexed
    /// attribute values and/or a specific observation value.
    ///
    /// * `dims: Some(values)` — queries Q1/Q5 style ("at location l…").
    /// * `dims: None` — queries Q2/Q3 style (all locations).
    /// * `observation: Some(o)` — queries Q4/Q5 style (individualized).
    Range {
        /// Indexed attribute values, or `None` for all.
        dims: Option<Vec<u64>>,
        /// Observation (device id) restriction, or `None`.
        observation: Option<u64>,
        /// Range start (inclusive, seconds).
        time_start: u64,
        /// Range end (inclusive, seconds).
        time_end: u64,
    },
}

impl Predicate {
    /// The inclusive time span this predicate covers.
    #[must_use]
    pub fn time_span(&self) -> (u64, u64) {
        match self {
            Predicate::Point { time, .. } => (*time, *time),
            Predicate::Range {
                time_start,
                time_end,
                ..
            } => (*time_start, *time_end),
        }
    }

    /// The observation value this predicate pins, if any. Used to decide
    /// whether the query needs individualized authorization.
    #[must_use]
    pub fn observation(&self) -> Option<u64> {
        match self {
            Predicate::Point { .. } => None,
            Predicate::Range { observation, .. } => *observation,
        }
    }

    /// The indexed-attribute values this predicate pins, if any.
    #[must_use]
    pub fn dims(&self) -> Option<&[u64]> {
        match self {
            Predicate::Point { dims, .. } => Some(dims),
            Predicate::Range { dims, .. } => dims.as_deref(),
        }
    }
}

/// The aggregation requested by a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregate {
    /// Number of matching tuples. Served purely by filter-column string
    /// matching: no decryption needed (the paper's fastest class, see
    /// Exp 8).
    Count,
    /// Sum of `payload[attr]` over matching tuples.
    Sum {
        /// Payload attribute index.
        attr: usize,
    },
    /// Minimum of `payload[attr]` over matching tuples.
    Min {
        /// Payload attribute index.
        attr: usize,
    },
    /// Maximum of `payload[attr]` over matching tuples.
    Max {
        /// Payload attribute index.
        attr: usize,
    },
    /// Average of `payload[attr]` over matching tuples.
    Average {
        /// Payload attribute index.
        attr: usize,
    },
    /// The `k` indexed-attribute values (first dimension) with the most
    /// matching tuples (query Q2).
    TopKLocations {
        /// How many locations to return.
        k: usize,
    },
    /// All first-dimension values with at least `threshold` matching tuples
    /// (query Q3).
    LocationsWithAtLeast {
        /// The minimum count.
        threshold: u64,
    },
    /// Return the matching tuples themselves (selection; used by
    /// individualized applications).
    CollectRows,
}

impl Aggregate {
    /// Whether evaluating this aggregate requires decrypting the payload
    /// column of matching tuples (everything except pure counting does).
    #[must_use]
    pub fn needs_decryption(&self) -> bool {
        !matches!(self, Aggregate::Count)
    }
}

/// A complete query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    /// The aggregation to compute.
    pub aggregate: Aggregate,
    /// The selection predicate.
    pub predicate: Predicate,
}

/// The value part of a query answer.
#[derive(Debug, Clone, PartialEq)]
pub enum AnswerValue {
    /// A count.
    Count(u64),
    /// Sum / min / max result (`None` when no tuple matched).
    Number(Option<u64>),
    /// An average (`None` when no tuple matched).
    Ratio(Option<f64>),
    /// `(first-dimension value, count)` pairs, ordered by descending count.
    LocationCounts(Vec<(u64, u64)>),
    /// Matching cleartext records.
    Rows(Vec<Record>),
}

/// A query answer plus the execution metadata the evaluation section of the
/// paper reports (rows fetched, rows decrypted, verification).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer {
    /// The answer value.
    pub value: AnswerValue,
    /// Encrypted rows fetched from the service provider's DBMS.
    pub rows_fetched: usize,
    /// Rows the enclave decrypted.
    pub rows_decrypted: usize,
    /// Whether integrity verification ran (and passed — a failed
    /// verification aborts the query with an error instead).
    pub verified: bool,
    /// Number of epochs the query touched.
    pub epochs_touched: usize,
}

/// Partial aggregation state, merged across bins and epochs.
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    /// Matching-tuple count.
    pub count: u64,
    /// Sum of the aggregated payload attribute.
    pub sum: u64,
    /// Minimum seen.
    pub min: Option<u64>,
    /// Maximum seen.
    pub max: Option<u64>,
    /// Per-first-dimension counts.
    pub per_location: std::collections::BTreeMap<u64, u64>,
    /// Collected records.
    pub rows: Vec<Record>,
}

impl Accumulator {
    /// Fold another accumulator into this one.
    pub fn merge(&mut self, other: Accumulator) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        for (loc, c) in other.per_location {
            *self.per_location.entry(loc).or_insert(0) += c;
        }
        self.rows.extend(other.rows);
    }

    /// Produce the final answer value for `aggregate`.
    #[must_use]
    pub fn finish(self, aggregate: &Aggregate) -> AnswerValue {
        match aggregate {
            Aggregate::Count => AnswerValue::Count(self.count),
            Aggregate::Sum { .. } => AnswerValue::Number(if self.count > 0 {
                Some(self.sum)
            } else {
                None
            }),
            Aggregate::Min { .. } => AnswerValue::Number(self.min),
            Aggregate::Max { .. } => AnswerValue::Number(self.max),
            Aggregate::Average { .. } => AnswerValue::Ratio(if self.count > 0 {
                Some(self.sum as f64 / self.count as f64)
            } else {
                None
            }),
            Aggregate::TopKLocations { k } => {
                let mut pairs: Vec<(u64, u64)> =
                    self.per_location.into_iter().collect();
                pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                pairs.truncate(*k);
                AnswerValue::LocationCounts(pairs)
            }
            Aggregate::LocationsWithAtLeast { threshold } => {
                let mut pairs: Vec<(u64, u64)> = self
                    .per_location
                    .into_iter()
                    .filter(|(_, c)| *c >= *threshold)
                    .collect();
                pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                AnswerValue::LocationCounts(pairs)
            }
            Aggregate::CollectRows => AnswerValue::Rows(self.rows),
        }
    }
}

pub use self::AnswerValue as Answer;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_time_span_and_accessors() {
        let p = Predicate::Point { dims: vec![1], time: 50 };
        assert_eq!(p.time_span(), (50, 50));
        assert_eq!(p.dims(), Some(&[1u64][..]));
        assert_eq!(p.observation(), None);

        let r = Predicate::Range {
            dims: None,
            observation: Some(9),
            time_start: 10,
            time_end: 20,
        };
        assert_eq!(r.time_span(), (10, 20));
        assert_eq!(r.dims(), None);
        assert_eq!(r.observation(), Some(9));
    }

    #[test]
    fn aggregate_decryption_requirements() {
        assert!(!Aggregate::Count.needs_decryption());
        assert!(Aggregate::Sum { attr: 0 }.needs_decryption());
        assert!(Aggregate::TopKLocations { k: 3 }.needs_decryption());
        assert!(Aggregate::CollectRows.needs_decryption());
    }

    #[test]
    fn accumulator_merge_and_finish_count() {
        let mut a = Accumulator { count: 3, ..Default::default() };
        a.merge(Accumulator { count: 4, ..Default::default() });
        assert_eq!(a.finish(&Aggregate::Count), AnswerValue::Count(7));
    }

    #[test]
    fn accumulator_min_max_avg() {
        let mut a = Accumulator::default();
        a.merge(Accumulator {
            count: 2,
            sum: 30,
            min: Some(10),
            max: Some(20),
            ..Default::default()
        });
        a.merge(Accumulator {
            count: 1,
            sum: 5,
            min: Some(5),
            max: Some(5),
            ..Default::default()
        });
        assert_eq!(a.clone().finish(&Aggregate::Min { attr: 0 }), AnswerValue::Number(Some(5)));
        assert_eq!(a.clone().finish(&Aggregate::Max { attr: 0 }), AnswerValue::Number(Some(20)));
        assert_eq!(a.clone().finish(&Aggregate::Sum { attr: 0 }), AnswerValue::Number(Some(35)));
        match a.finish(&Aggregate::Average { attr: 0 }) {
            AnswerValue::Ratio(Some(v)) => assert!((v - 35.0 / 3.0).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_accumulator_yields_none() {
        let a = Accumulator::default();
        assert_eq!(a.clone().finish(&Aggregate::Sum { attr: 0 }), AnswerValue::Number(None));
        assert_eq!(a.clone().finish(&Aggregate::Min { attr: 0 }), AnswerValue::Number(None));
        assert_eq!(a.finish(&Aggregate::Average { attr: 0 }), AnswerValue::Ratio(None));
    }

    #[test]
    fn top_k_and_threshold() {
        let a = Accumulator {
            per_location: [(1u64, 10u64), (2, 30), (3, 20), (4, 5)].into_iter().collect(),
            ..Default::default()
        };
        assert_eq!(
            a.clone().finish(&Aggregate::TopKLocations { k: 2 }),
            AnswerValue::LocationCounts(vec![(2, 30), (3, 20)])
        );
        assert_eq!(
            a.finish(&Aggregate::LocationsWithAtLeast { threshold: 10 }),
            AnswerValue::LocationCounts(vec![(2, 30), (3, 20), (1, 10)])
        );
    }
}
