//! Query model: predicates, aggregates, answers.
//!
//! Concealer supports the limited OLAP-style query repertoire the paper's
//! Table 4 lists: aggregations (count, sum, min, max, average, top-k) with
//! predicates over the indexed attributes, the observation attribute, and a
//! time point or range. Queries fall into the paper's two application
//! classes: *aggregate* applications (occupancy, heat maps, top-k locations)
//! and *individualized* applications (a user's own past movements, keyed by
//! an observation/device id they own).

pub mod filter;
pub mod trapdoor;

use serde::{Deserialize, Serialize};

use crate::types::Record;

/// The selection predicate of a query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Predicate {
    /// Exact indexed-attribute values at an exact time instant
    /// (the paper's point query).
    Point {
        /// Values of the indexed attributes (e.g. `[location]`).
        dims: Vec<u64>,
        /// The time instant (seconds).
        time: u64,
    },
    /// A time-range query, optionally restricted to specific indexed
    /// attribute values and/or a specific observation value.
    ///
    /// * `dims: Some(values)` — queries Q1/Q5 style ("at location l…").
    /// * `dims: None` — queries Q2/Q3 style (all locations).
    /// * `observation: Some(o)` — queries Q4/Q5 style (individualized).
    Range {
        /// Indexed attribute values, or `None` for all.
        dims: Option<Vec<u64>>,
        /// Observation (device id) restriction, or `None`.
        observation: Option<u64>,
        /// Range start (inclusive, seconds).
        time_start: u64,
        /// Range end (inclusive, seconds).
        time_end: u64,
    },
}

impl Predicate {
    /// The inclusive time span this predicate covers.
    #[must_use]
    pub fn time_span(&self) -> (u64, u64) {
        match self {
            Predicate::Point { time, .. } => (*time, *time),
            Predicate::Range {
                time_start,
                time_end,
                ..
            } => (*time_start, *time_end),
        }
    }

    /// The observation value this predicate pins, if any. Used to decide
    /// whether the query needs individualized authorization.
    #[must_use]
    pub fn observation(&self) -> Option<u64> {
        match self {
            Predicate::Point { .. } => None,
            Predicate::Range { observation, .. } => *observation,
        }
    }

    /// The indexed-attribute values this predicate pins, if any.
    #[must_use]
    pub fn dims(&self) -> Option<&[u64]> {
        match self {
            Predicate::Point { dims, .. } => Some(dims),
            Predicate::Range { dims, .. } => dims.as_deref(),
        }
    }
}

/// The aggregation requested by a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregate {
    /// Number of matching tuples. Served purely by filter-column string
    /// matching: no decryption needed (the paper's fastest class, see
    /// Exp 8).
    Count,
    /// Sum of `payload[attr]` over matching tuples.
    Sum {
        /// Payload attribute index.
        attr: usize,
    },
    /// Minimum of `payload[attr]` over matching tuples.
    Min {
        /// Payload attribute index.
        attr: usize,
    },
    /// Maximum of `payload[attr]` over matching tuples.
    Max {
        /// Payload attribute index.
        attr: usize,
    },
    /// Average of `payload[attr]` over matching tuples.
    Average {
        /// Payload attribute index.
        attr: usize,
    },
    /// The `k` indexed-attribute values (first dimension) with the most
    /// matching tuples (query Q2).
    TopKLocations {
        /// How many locations to return.
        k: usize,
    },
    /// All first-dimension values with at least `threshold` matching tuples
    /// (query Q3).
    LocationsWithAtLeast {
        /// The minimum count.
        threshold: u64,
    },
    /// Return the matching tuples themselves (selection; used by
    /// individualized applications).
    CollectRows,
}

impl Aggregate {
    /// Whether evaluating this aggregate requires decrypting the payload
    /// column of matching tuples (everything except pure counting does).
    #[must_use]
    pub fn needs_decryption(&self) -> bool {
        !matches!(self, Aggregate::Count)
    }
}

/// A complete query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    /// The aggregation to compute.
    pub aggregate: Aggregate,
    /// The selection predicate.
    pub predicate: Predicate,
}

impl Query {
    /// Build a count query: `Query::count().at_dims([l]).between(t0, t1)`.
    #[must_use]
    pub fn count() -> QueryBuilder {
        QueryBuilder::new(Aggregate::Count)
    }

    /// Build a sum query over `payload[attr]`.
    #[must_use]
    pub fn sum(attr: usize) -> QueryBuilder {
        QueryBuilder::new(Aggregate::Sum { attr })
    }

    /// Build a minimum query over `payload[attr]`.
    #[must_use]
    pub fn min(attr: usize) -> QueryBuilder {
        QueryBuilder::new(Aggregate::Min { attr })
    }

    /// Build a maximum query over `payload[attr]`.
    #[must_use]
    pub fn max(attr: usize) -> QueryBuilder {
        QueryBuilder::new(Aggregate::Max { attr })
    }

    /// Build an average query over `payload[attr]`.
    #[must_use]
    pub fn average(attr: usize) -> QueryBuilder {
        QueryBuilder::new(Aggregate::Average { attr })
    }

    /// Build a top-k-locations query (query Q2).
    #[must_use]
    pub fn top_k_locations(k: usize) -> QueryBuilder {
        QueryBuilder::new(Aggregate::TopKLocations { k })
    }

    /// Build a locations-with-at-least-`threshold` query (query Q3).
    #[must_use]
    pub fn locations_with_at_least(threshold: u64) -> QueryBuilder {
        QueryBuilder::new(Aggregate::LocationsWithAtLeast { threshold })
    }

    /// Build a row-collection (selection) query.
    #[must_use]
    pub fn collect_rows() -> QueryBuilder {
        QueryBuilder::new(Aggregate::CollectRows)
    }
}

/// Fluent builder for [`Query`] values, entered through the constructors on
/// [`Query`] (`Query::count()`, `Query::sum(attr)`, …) and finished by a
/// time selector:
///
/// ```
/// use concealer_core::{Predicate, Query};
///
/// let q = Query::count().at_dims([3]).between(0, 1_799);
/// assert_eq!(q.predicate.dims(), Some(&[3u64][..]));
///
/// let p = Query::count().at_dims([3]).at(600);
/// assert!(matches!(p.predicate, Predicate::Point { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    aggregate: Aggregate,
    dims: Option<Vec<u64>>,
    observation: Option<u64>,
}

impl QueryBuilder {
    fn new(aggregate: Aggregate) -> Self {
        QueryBuilder {
            aggregate,
            dims: None,
            observation: None,
        }
    }

    /// Pin the indexed-attribute values (e.g. `[location]`). Omitting this
    /// queries all locations (Q2/Q3 style).
    #[must_use]
    pub fn at_dims(mut self, dims: impl Into<Vec<u64>>) -> Self {
        self.dims = Some(dims.into());
        self
    }

    /// Pin the observation (device id) — the individualized Q4/Q5 style.
    #[must_use]
    pub fn observing(mut self, observation: u64) -> Self {
        self.observation = Some(observation);
        self
    }

    /// Finish as a time-range query over `[time_start, time_end]`
    /// (inclusive).
    #[must_use]
    pub fn between(self, time_start: u64, time_end: u64) -> Query {
        Query {
            aggregate: self.aggregate,
            predicate: Predicate::Range {
                dims: self.dims,
                observation: self.observation,
                time_start,
                time_end,
            },
        }
    }

    /// Finish as a single-instant query. Produces a [`Predicate::Point`]
    /// when dims are pinned and no observation is; otherwise it degrades
    /// to a one-instant range — point predicates carry no observation, and
    /// omitted dims mean "all locations" (which only ranges express), so
    /// both cases keep `.at(t)` consistent with `.between(t, t)` instead
    /// of building a point query that can never execute.
    #[must_use]
    pub fn at(self, time: u64) -> Query {
        match (&self.dims, self.observation) {
            (Some(_), None) => Query {
                aggregate: self.aggregate,
                predicate: Predicate::Point {
                    dims: self.dims.expect("just matched Some"),
                    time,
                },
            },
            _ => self.between(time, time),
        }
    }
}

/// The value part of a query answer.
///
/// Serializable (like [`Query`]) so answers can cross the untrusted wire
/// between the serving layer and clients; the encoding is the positional
/// `serde::bin` format pinned by `tests/serde_roundtrip.rs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AnswerValue {
    /// A count.
    Count(u64),
    /// Sum / min / max result (`None` when no tuple matched).
    Number(Option<u64>),
    /// An average (`None` when no tuple matched).
    Ratio(Option<f64>),
    /// `(first-dimension value, count)` pairs, ordered by descending count.
    LocationCounts(Vec<(u64, u64)>),
    /// Matching cleartext records.
    Rows(Vec<Record>),
}

/// A query answer plus the execution metadata the evaluation section of the
/// paper reports (rows fetched, rows decrypted, verification).
///
/// The metadata travels with the value even over the wire: replies from a
/// remote Concealer server carry the same `verified` / volume fields an
/// in-process execution produces, so a client can check that integrity
/// verification actually ran without trusting the transport.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryAnswer {
    /// The answer value.
    pub value: AnswerValue,
    /// Encrypted rows fetched from the service provider's DBMS.
    pub rows_fetched: usize,
    /// Rows the enclave decrypted.
    pub rows_decrypted: usize,
    /// Whether integrity verification ran (and passed — a failed
    /// verification aborts the query with an error instead).
    pub verified: bool,
    /// Number of epochs the query touched.
    pub epochs_touched: usize,
}

/// Partial aggregation state, merged across bins and epochs.
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    /// Matching-tuple count.
    pub count: u64,
    /// Sum of the aggregated payload attribute.
    pub sum: u64,
    /// Minimum seen.
    pub min: Option<u64>,
    /// Maximum seen.
    pub max: Option<u64>,
    /// Per-first-dimension counts.
    pub per_location: std::collections::BTreeMap<u64, u64>,
    /// Collected records.
    pub rows: Vec<Record>,
}

impl Accumulator {
    /// Fold another accumulator into this one.
    pub fn merge(&mut self, other: Accumulator) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        for (loc, c) in other.per_location {
            *self.per_location.entry(loc).or_insert(0) += c;
        }
        self.rows.extend(other.rows);
    }

    /// Produce the final answer value for `aggregate`.
    #[must_use]
    pub fn finish(self, aggregate: &Aggregate) -> AnswerValue {
        match aggregate {
            Aggregate::Count => AnswerValue::Count(self.count),
            Aggregate::Sum { .. } => {
                AnswerValue::Number(if self.count > 0 { Some(self.sum) } else { None })
            }
            Aggregate::Min { .. } => AnswerValue::Number(self.min),
            Aggregate::Max { .. } => AnswerValue::Number(self.max),
            Aggregate::Average { .. } => AnswerValue::Ratio(if self.count > 0 {
                Some(self.sum as f64 / self.count as f64)
            } else {
                None
            }),
            Aggregate::TopKLocations { k } => {
                let mut pairs: Vec<(u64, u64)> = self.per_location.into_iter().collect();
                pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                pairs.truncate(*k);
                AnswerValue::LocationCounts(pairs)
            }
            Aggregate::LocationsWithAtLeast { threshold } => {
                let mut pairs: Vec<(u64, u64)> = self
                    .per_location
                    .into_iter()
                    .filter(|(_, c)| *c >= *threshold)
                    .collect();
                pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                AnswerValue::LocationCounts(pairs)
            }
            Aggregate::CollectRows => AnswerValue::Rows(self.rows),
        }
    }
}

pub use self::AnswerValue as Answer;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_time_span_and_accessors() {
        let p = Predicate::Point {
            dims: vec![1],
            time: 50,
        };
        assert_eq!(p.time_span(), (50, 50));
        assert_eq!(p.dims(), Some(&[1u64][..]));
        assert_eq!(p.observation(), None);

        let r = Predicate::Range {
            dims: None,
            observation: Some(9),
            time_start: 10,
            time_end: 20,
        };
        assert_eq!(r.time_span(), (10, 20));
        assert_eq!(r.dims(), None);
        assert_eq!(r.observation(), Some(9));
    }

    #[test]
    fn aggregate_decryption_requirements() {
        assert!(!Aggregate::Count.needs_decryption());
        assert!(Aggregate::Sum { attr: 0 }.needs_decryption());
        assert!(Aggregate::TopKLocations { k: 3 }.needs_decryption());
        assert!(Aggregate::CollectRows.needs_decryption());
    }

    #[test]
    fn accumulator_merge_and_finish_count() {
        let mut a = Accumulator {
            count: 3,
            ..Default::default()
        };
        a.merge(Accumulator {
            count: 4,
            ..Default::default()
        });
        assert_eq!(a.finish(&Aggregate::Count), AnswerValue::Count(7));
    }

    #[test]
    fn accumulator_min_max_avg() {
        let mut a = Accumulator::default();
        a.merge(Accumulator {
            count: 2,
            sum: 30,
            min: Some(10),
            max: Some(20),
            ..Default::default()
        });
        a.merge(Accumulator {
            count: 1,
            sum: 5,
            min: Some(5),
            max: Some(5),
            ..Default::default()
        });
        assert_eq!(
            a.clone().finish(&Aggregate::Min { attr: 0 }),
            AnswerValue::Number(Some(5))
        );
        assert_eq!(
            a.clone().finish(&Aggregate::Max { attr: 0 }),
            AnswerValue::Number(Some(20))
        );
        assert_eq!(
            a.clone().finish(&Aggregate::Sum { attr: 0 }),
            AnswerValue::Number(Some(35))
        );
        match a.finish(&Aggregate::Average { attr: 0 }) {
            AnswerValue::Ratio(Some(v)) => assert!((v - 35.0 / 3.0).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_accumulator_yields_none() {
        let a = Accumulator::default();
        assert_eq!(
            a.clone().finish(&Aggregate::Sum { attr: 0 }),
            AnswerValue::Number(None)
        );
        assert_eq!(
            a.clone().finish(&Aggregate::Min { attr: 0 }),
            AnswerValue::Number(None)
        );
        assert_eq!(
            a.finish(&Aggregate::Average { attr: 0 }),
            AnswerValue::Ratio(None)
        );
    }

    #[test]
    fn builder_produces_expected_queries() {
        let q = Query::count().at_dims([3]).between(0, 1799);
        assert_eq!(q.aggregate, Aggregate::Count);
        assert_eq!(
            q.predicate,
            Predicate::Range {
                dims: Some(vec![3]),
                observation: None,
                time_start: 0,
                time_end: 1799,
            }
        );

        let q = Query::sum(1).between(10, 20);
        assert_eq!(q.aggregate, Aggregate::Sum { attr: 1 });
        assert_eq!(q.predicate.dims(), None);

        let q = Query::collect_rows().observing(42).between(0, 99);
        assert_eq!(q.predicate.observation(), Some(42));

        let point = Query::count().at_dims(vec![5, 6]).at(300);
        assert_eq!(
            point.predicate,
            Predicate::Point {
                dims: vec![5, 6],
                time: 300
            }
        );

        // Pinning an observation degrades `.at` to a one-instant range.
        let pinned = Query::count().at_dims([5]).observing(9).at(300);
        assert_eq!(
            pinned.predicate,
            Predicate::Range {
                dims: Some(vec![5]),
                observation: Some(9),
                time_start: 300,
                time_end: 300,
            }
        );

        // Omitting dims also degrades `.at` to a one-instant range (an
        // all-locations instant, consistent with `.between`), never an
        // unexecutable empty-dims point.
        let all_locations = Query::count().at(300);
        assert_eq!(
            all_locations.predicate,
            Predicate::Range {
                dims: None,
                observation: None,
                time_start: 300,
                time_end: 300,
            }
        );
    }

    #[test]
    fn top_k_and_threshold() {
        let a = Accumulator {
            per_location: [(1u64, 10u64), (2, 30), (3, 20), (4, 5)]
                .into_iter()
                .collect(),
            ..Default::default()
        };
        assert_eq!(
            a.clone().finish(&Aggregate::TopKLocations { k: 2 }),
            AnswerValue::LocationCounts(vec![(2, 30), (3, 20)])
        );
        assert_eq!(
            a.finish(&Aggregate::LocationsWithAtLeast { threshold: 10 }),
            AnswerValue::LocationCounts(vec![(2, 30), (3, 20), (1, 10)])
        );
    }
}
