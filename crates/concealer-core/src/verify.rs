//! Hash-chain integrity verification (Algorithm 1 lines 16-21 and §4.2
//! Step 4 of the paper).
//!
//! For every cell-id the data provider chains the encrypted tuples that
//! carry it, in counter order:
//!
//! ```text
//! h_1 = H(row_1),   h_j = H(row_j || h_{j-1})
//! ```
//!
//! where `row_j` is the concatenation of the tuple's encrypted columns. The
//! final digest is encrypted (so the service provider cannot recompute or
//! forge it) and shipped as the cell-id's *verifiable tag*. At query time
//! the enclave rebuilds the chain from the fetched tuples and compares it
//! against the decrypted tag: any tuple modification, deletion, reordering
//! or injection by the service provider changes the digest.
//!
//! The paper builds one chain per column (`E_l`, `E_o`, `E_r`); this
//! implementation chains the concatenation of all columns, which detects
//! the same tamper classes with a third of the tag volume. The consolidation
//! is noted in ARCHITECTURE.md.

use concealer_crypto::sha256::{Digest, Sha256};
use concealer_crypto::EpochKey;
use concealer_storage::EncryptedRow;
use rand::RngCore;

use crate::{CoreError, Result};

/// Domain-separation prefix for chain hashing.
const CHAIN_DOMAIN: &[u8] = b"concealer/hash-chain/v1";

fn hash_row_into_chain(key: &EpochKey, row: &EncryptedRow, prev: Option<&Digest>) -> Digest {
    let mut h = Sha256::new();
    h.update(CHAIN_DOMAIN);
    h.update(&key.hash_chain_key);
    h.update(&(row.index_key.len() as u32).to_be_bytes());
    h.update(&row.index_key);
    for f in &row.filters {
        h.update(&(f.len() as u32).to_be_bytes());
        h.update(f);
    }
    h.update(&(row.payload.len() as u32).to_be_bytes());
    h.update(&row.payload);
    if let Some(prev) = prev {
        h.update(prev);
    }
    h.finalize()
}

/// Builds per-cell-id hash chains at the data provider.
#[derive(Debug)]
pub struct HashChainBuilder<'k> {
    key: &'k EpochKey,
    digests: Vec<Option<Digest>>,
}

impl<'k> HashChainBuilder<'k> {
    /// Start chains for `num_cell_ids` cell-ids.
    #[must_use]
    pub fn new(key: &'k EpochKey, num_cell_ids: usize) -> Self {
        HashChainBuilder {
            key,
            digests: vec![None; num_cell_ids],
        }
    }

    /// Absorb the next tuple of `cell_id` (tuples must be absorbed in
    /// counter order, which is the order Algorithm 1 encrypts them in).
    pub fn absorb(&mut self, cell_id: u32, row: &EncryptedRow) {
        let slot = &mut self.digests[cell_id as usize];
        let next = hash_row_into_chain(self.key, row, slot.as_ref());
        *slot = Some(next);
    }

    /// Encrypt the final digest of every cell-id's chain, producing the
    /// verifiable tags shipped to the service provider. Cell-ids that
    /// received no tuples get a tag over the empty chain so their absence
    /// of data is also authenticated.
    #[must_use]
    pub fn finalize<R: RngCore>(self, rng: &mut R) -> Vec<Vec<u8>> {
        let key = self.key;
        self.digests
            .into_iter()
            .map(|d| {
                let digest = d.unwrap_or([0u8; 32]);
                key.rand.encrypt(rng, &digest)
            })
            .collect()
    }
}

/// Verify the fetched tuples of one cell-id against its verifiable tag
/// (enclave side).
///
/// `rows` must contain exactly the real tuples of `cell_id`, in counter
/// order — which is how the engine fetches them, because trapdoors are
/// generated for counters `1..=c_tuple[cell_id]` in order.
pub fn verify_cell_chain(
    key: &EpochKey,
    cell_id: u32,
    rows: &[&EncryptedRow],
    enc_tag: &[u8],
) -> Result<()> {
    let mut digest: Option<Digest> = None;
    for row in rows {
        digest = Some(hash_row_into_chain(key, row, digest.as_ref()));
    }
    let digest = digest.unwrap_or([0u8; 32]);
    let expected = key
        .rand
        .decrypt(enc_tag)
        .map_err(|_| CoreError::IntegrityViolation { cell_id })?;
    if !concealer_crypto::ct_eq(&expected, &digest) {
        return Err(CoreError::IntegrityViolation { cell_id });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use concealer_crypto::{EpochId, MasterKey};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key() -> EpochKey {
        MasterKey::from_bytes([9u8; 32]).epoch_key(EpochId(5), 0)
    }

    fn row(tag: u8) -> EncryptedRow {
        EncryptedRow {
            index_key: vec![tag; 9],
            filters: vec![vec![tag; 16], vec![tag ^ 0xff; 16]],
            payload: vec![tag; 40],
        }
    }

    #[test]
    fn roundtrip_verification() {
        let key = key();
        let mut rng = StdRng::seed_from_u64(1);
        let rows = vec![row(1), row(2), row(3)];

        let mut builder = HashChainBuilder::new(&key, 4);
        for r in &rows {
            builder.absorb(2, r);
        }
        let tags = builder.finalize(&mut rng);
        assert_eq!(tags.len(), 4);

        let refs: Vec<&EncryptedRow> = rows.iter().collect();
        assert!(verify_cell_chain(&key, 2, &refs, &tags[2]).is_ok());
        // Empty cell-ids verify against their empty-chain tags.
        assert!(verify_cell_chain(&key, 0, &[], &tags[0]).is_ok());
    }

    #[test]
    fn detects_modification() {
        let key = key();
        let mut rng = StdRng::seed_from_u64(2);
        let rows = vec![row(1), row(2)];
        let mut builder = HashChainBuilder::new(&key, 1);
        for r in &rows {
            builder.absorb(0, r);
        }
        let tags = builder.finalize(&mut rng);

        let mut tampered = rows.clone();
        tampered[1].payload[0] ^= 1;
        let refs: Vec<&EncryptedRow> = tampered.iter().collect();
        assert_eq!(
            verify_cell_chain(&key, 0, &refs, &tags[0]),
            Err(CoreError::IntegrityViolation { cell_id: 0 })
        );
    }

    #[test]
    fn detects_deletion_injection_and_reorder() {
        let key = key();
        let mut rng = StdRng::seed_from_u64(3);
        let rows = vec![row(1), row(2), row(3)];
        let mut builder = HashChainBuilder::new(&key, 1);
        for r in &rows {
            builder.absorb(0, r);
        }
        let tags = builder.finalize(&mut rng);

        // Deletion.
        let missing: Vec<&EncryptedRow> = rows.iter().take(2).collect();
        assert!(verify_cell_chain(&key, 0, &missing, &tags[0]).is_err());
        // Injection.
        let extra_row = row(9);
        let mut extra: Vec<&EncryptedRow> = rows.iter().collect();
        extra.push(&extra_row);
        assert!(verify_cell_chain(&key, 0, &extra, &tags[0]).is_err());
        // Reorder.
        let reordered: Vec<&EncryptedRow> = vec![&rows[1], &rows[0], &rows[2]];
        assert!(verify_cell_chain(&key, 0, &reordered, &tags[0]).is_err());
    }

    #[test]
    fn detects_forged_tag() {
        let key = key();
        let rows = [row(1)];
        let refs: Vec<&EncryptedRow> = rows.iter().collect();
        // A tag not produced under the epoch key fails decryption → error.
        assert!(verify_cell_chain(&key, 0, &refs, &[0u8; 64]).is_err());
    }

    #[test]
    fn chains_are_key_dependent() {
        let k1 = key();
        let k2 = MasterKey::from_bytes([8u8; 32]).epoch_key(EpochId(5), 0);
        let r = row(1);
        assert_ne!(
            hash_row_into_chain(&k1, &r, None),
            hash_row_into_chain(&k2, &r, None)
        );
    }
}
