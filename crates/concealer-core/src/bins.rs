//! Bin packing over cell-ids (§4.1 of the paper).
//!
//! The enclave groups cell-ids into **bins of identical size**: the inputs
//! to the packing algorithm are the cell-ids, each weighted by the number of
//! tuples that carry it (`c_tuple[]`), the bin capacity is at least the
//! largest weight, and First-Fit Decreasing (FFD) or Best-Fit Decreasing
//! (BFD) assigns every cell-id to exactly one bin. Bins that end up lighter
//! than the capacity are padded with *disjoint* ranges of fake-tuple ids —
//! disjoint because reusing a fake tuple across two bins would let the
//! adversary subtract it out (Example 4.1 of the paper).
//!
//! Theorem 4.1 of the paper bounds the construction: with bin size `|b|`
//! at least the maximum weight, FFD/BFD needs at most `2n/|b|` bins and at
//! most `n + |b|/2` fake tuples for `n` real tuples. The property tests at
//! the bottom of this module check those bounds hold for every generated
//! instance.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which classical bin-packing heuristic to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PackingAlgorithm {
    /// First-Fit Decreasing.
    FirstFitDecreasing,
    /// Best-Fit Decreasing.
    BestFitDecreasing,
}

/// One bin of the plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bin {
    /// Cell-ids assigned to this bin.
    pub cell_ids: Vec<u32>,
    /// Total real tuples across those cell-ids.
    pub real_tuples: u64,
    /// Fake tuple ids `[start, end)` padding this bin up to the bin size.
    /// Ranges of different bins are disjoint.
    pub fake_range: (u64, u64),
}

impl Bin {
    /// Number of fake tuples this bin needs.
    #[must_use]
    pub fn fake_tuples(&self) -> u64 {
        self.fake_range.1 - self.fake_range.0
    }

    /// Total tuples (real + fake) fetched when this bin is retrieved.
    #[must_use]
    pub fn total_tuples(&self) -> u64 {
        self.real_tuples + self.fake_tuples()
    }
}

/// The complete bin plan for one epoch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinPlan {
    /// The bins, in construction order.
    pub bins: Vec<Bin>,
    /// The common size every bin is padded to.
    pub bin_size: u64,
    /// Which bin each cell-id landed in (`cell_id -> bin index`).
    cell_to_bin: HashMap<u32, usize>,
}

impl BinPlan {
    /// Build a bin plan from the per-cell-id tuple counts.
    ///
    /// * `c_tuple[i]` is the number of real tuples whose cell-id is `i`.
    /// * `algorithm` selects FFD or BFD.
    /// * `min_bin_size` optionally raises the bin capacity above the
    ///   maximum weight (used by eBPB / winSecRange, which derive the size
    ///   from range-window sums instead).
    #[must_use]
    pub fn build(c_tuple: &[u32], algorithm: PackingAlgorithm, min_bin_size: Option<u64>) -> Self {
        let max_weight = c_tuple.iter().copied().max().unwrap_or(0) as u64;
        let bin_size = min_bin_size.unwrap_or(0).max(max_weight).max(1);

        // Sort cell-ids by decreasing weight (the "Decreasing" in FFD/BFD).
        let mut order: Vec<u32> = (0..c_tuple.len() as u32).collect();
        order.sort_by_key(|&cid| std::cmp::Reverse(c_tuple[cid as usize]));

        let mut bins: Vec<Bin> = Vec::new();
        let mut loads: Vec<u64> = Vec::new();

        for cid in order {
            let w = c_tuple[cid as usize] as u64;
            let slot = match algorithm {
                PackingAlgorithm::FirstFitDecreasing => {
                    loads.iter().position(|&load| load + w <= bin_size)
                }
                PackingAlgorithm::BestFitDecreasing => loads
                    .iter()
                    .enumerate()
                    .filter(|(_, &load)| load + w <= bin_size)
                    .max_by_key(|(_, &load)| load)
                    .map(|(i, _)| i),
            };
            match slot {
                Some(i) => {
                    bins[i].cell_ids.push(cid);
                    bins[i].real_tuples += w;
                    loads[i] += w;
                }
                None => {
                    bins.push(Bin {
                        cell_ids: vec![cid],
                        real_tuples: w,
                        fake_range: (0, 0),
                    });
                    loads.push(w);
                }
            }
        }

        // Assign disjoint fake-id ranges to pad every bin to bin_size.
        let mut next_fake = 0u64;
        for bin in &mut bins {
            let need = bin_size - bin.real_tuples;
            bin.fake_range = (next_fake, next_fake + need);
            next_fake += need;
        }

        let cell_to_bin = bins
            .iter()
            .enumerate()
            .flat_map(|(i, b)| b.cell_ids.iter().map(move |&cid| (cid, i)))
            .collect();

        BinPlan {
            bins,
            bin_size,
            cell_to_bin,
        }
    }

    /// Number of bins.
    #[must_use]
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Total real tuples covered by the plan.
    #[must_use]
    pub fn total_real_tuples(&self) -> u64 {
        self.bins.iter().map(|b| b.real_tuples).sum()
    }

    /// Total fake tuples required to pad every bin.
    #[must_use]
    pub fn total_fake_tuples(&self) -> u64 {
        self.bins.iter().map(Bin::fake_tuples).sum()
    }

    /// The bin (index) containing a cell-id, if the cell-id exists.
    #[must_use]
    pub fn bin_of_cell(&self, cell_id: u32) -> Option<usize> {
        self.cell_to_bin.get(&cell_id).copied()
    }

    /// The bin containing a cell-id.
    #[must_use]
    pub fn bin_for_cell(&self, cell_id: u32) -> Option<&Bin> {
        self.bin_of_cell(cell_id).map(|i| &self.bins[i])
    }

    /// Maximum number of cell-ids in any bin (`#C_max` in §4.3, used to size
    /// the oblivious trapdoor generation).
    #[must_use]
    pub fn max_cells_per_bin(&self) -> usize {
        self.bins
            .iter()
            .map(|b| b.cell_ids.len())
            .max()
            .unwrap_or(0)
    }

    /// Maximum number of fake tuples any bin needs (`#f_max` in §4.3).
    #[must_use]
    pub fn max_fakes_per_bin(&self) -> u64 {
        self.bins.iter().map(Bin::fake_tuples).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_4_1() {
        // c_tuple[5] = {79, 2, 73, 7, 7}: bin size 79, three bins, 69 fakes.
        let c_tuple = [79u32, 2, 73, 7, 7];
        let plan = BinPlan::build(&c_tuple, PackingAlgorithm::FirstFitDecreasing, None);
        assert_eq!(plan.bin_size, 79);
        assert_eq!(plan.num_bins(), 3);
        assert_eq!(plan.total_fake_tuples(), 69);
        // Every bin padded to exactly the bin size.
        for bin in &plan.bins {
            assert_eq!(bin.total_tuples(), 79);
        }
    }

    #[test]
    fn every_cell_id_in_exactly_one_bin() {
        let c_tuple: Vec<u32> = (0..100).map(|i| (i * 7 % 23) as u32).collect();
        let plan = BinPlan::build(&c_tuple, PackingAlgorithm::FirstFitDecreasing, None);
        let mut seen = vec![0u32; c_tuple.len()];
        for bin in &plan.bins {
            for &cid in &bin.cell_ids {
                seen[cid as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&s| s == 1));
        for cid in 0..c_tuple.len() as u32 {
            assert!(plan.bin_of_cell(cid).is_some());
        }
        assert_eq!(plan.bin_of_cell(100), None);
    }

    #[test]
    fn fake_ranges_are_disjoint_and_cover_padding() {
        let c_tuple = [10u32, 3, 9, 1, 0, 6];
        for algo in [
            PackingAlgorithm::FirstFitDecreasing,
            PackingAlgorithm::BestFitDecreasing,
        ] {
            let plan = BinPlan::build(&c_tuple, algo, None);
            let mut ranges: Vec<(u64, u64)> = plan.bins.iter().map(|b| b.fake_range).collect();
            ranges.sort_unstable();
            for pair in ranges.windows(2) {
                assert!(pair[0].1 <= pair[1].0, "ranges overlap: {pair:?}");
            }
            for bin in &plan.bins {
                assert_eq!(bin.total_tuples(), plan.bin_size);
            }
        }
    }

    #[test]
    fn min_bin_size_raises_capacity() {
        let c_tuple = [5u32, 5, 5];
        let plan = BinPlan::build(&c_tuple, PackingAlgorithm::FirstFitDecreasing, Some(100));
        assert_eq!(plan.bin_size, 100);
        assert_eq!(plan.num_bins(), 1, "all inputs fit one large bin");
    }

    #[test]
    fn empty_and_all_zero_inputs() {
        let plan = BinPlan::build(&[], PackingAlgorithm::FirstFitDecreasing, None);
        assert_eq!(plan.num_bins(), 0);
        assert_eq!(plan.total_fake_tuples(), 0);

        let plan = BinPlan::build(&[0, 0, 0], PackingAlgorithm::FirstFitDecreasing, None);
        assert_eq!(plan.total_real_tuples(), 0);
        // Zero-weight cell-ids still land in exactly one bin so point
        // queries on empty cells have something to fetch.
        assert!(plan.num_bins() >= 1);
        for cid in 0..3 {
            assert!(plan.bin_of_cell(cid).is_some());
        }
    }

    #[test]
    fn bfd_fills_at_least_as_tightly_as_ffd() {
        let c_tuple: Vec<u32> = vec![40, 35, 30, 25, 20, 15, 10, 5, 5, 5];
        let ffd = BinPlan::build(&c_tuple, PackingAlgorithm::FirstFitDecreasing, None);
        let bfd = BinPlan::build(&c_tuple, PackingAlgorithm::BestFitDecreasing, None);
        assert_eq!(ffd.total_real_tuples(), bfd.total_real_tuples());
        // Both respect the capacity.
        assert!(ffd.bins.iter().all(|b| b.real_tuples <= ffd.bin_size));
        assert!(bfd.bins.iter().all(|b| b.real_tuples <= bfd.bin_size));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Theorem 4.1: #bins <= ceil(2n/|b|) + 1 and #fakes <= n + |b|.
        /// (The paper states 2n/|b| and n + |b|/2 for n >> |b|; the +1 / +|b|
        /// slack covers the tiny-instance cases the asymptotic statement
        /// ignores.)
        #[test]
        fn prop_theorem_4_1_bounds(c_tuple in proptest::collection::vec(0u32..500, 1..200)) {
            for algo in [PackingAlgorithm::FirstFitDecreasing, PackingAlgorithm::BestFitDecreasing] {
                let plan = BinPlan::build(&c_tuple, algo, None);
                let n: u64 = c_tuple.iter().map(|&c| c as u64).sum();
                let b = plan.bin_size;
                prop_assert!(plan.num_bins() as u64 <= 2 * n / b + 1,
                    "bins {} exceeds bound for n={n}, b={b}", plan.num_bins());
                prop_assert!(plan.total_fake_tuples() <= n + b,
                    "fakes {} exceeds bound for n={n}, b={b}", plan.total_fake_tuples());
                // All bins identical size after padding.
                for bin in &plan.bins {
                    prop_assert_eq!(bin.total_tuples(), plan.bin_size);
                }
                // Every cell-id appears exactly once.
                let mut count = vec![0u32; c_tuple.len()];
                for bin in &plan.bins {
                    for &cid in &bin.cell_ids {
                        count[cid as usize] += 1;
                    }
                }
                prop_assert!(count.iter().all(|&c| c == 1));
            }
        }

        /// All-but-one bins at least half full (the FFD/BFD property the
        /// paper's proof leans on), ignoring zero-weight-only bins.
        #[test]
        fn prop_half_full(c_tuple in proptest::collection::vec(1u32..300, 2..150)) {
            let plan = BinPlan::build(&c_tuple, PackingAlgorithm::FirstFitDecreasing, None);
            let under_half = plan
                .bins
                .iter()
                .filter(|b| b.real_tuples * 2 < plan.bin_size)
                .count();
            prop_assert!(under_half <= 1, "more than one bin under half full");
        }
    }
}
