//! Cleartext data model.

use serde::{Deserialize, Serialize};

/// One cleartext reading produced by the data provider's sensors.
///
/// The paper's running relation is `R(L, T, O)` — location, time,
/// observation. To also cover the TPC-H evaluation (composite 2-D and 4-D
/// indexes), the model generalizes to:
///
/// * `dims` — the values of the attributes covered by the grid index
///   (`[location]` for the WiFi relation, `[orderkey, linenumber]` for the
///   TPC-H 2-D index, …). Order matches [`crate::GridShape::dim_buckets`].
/// * `time` — the reading's timestamp (seconds). For non-temporal relations
///   the workload generator assigns a synthetic, monotonically increasing
///   timestamp, which is also what makes the deterministic ciphertexts of
///   repeated values distinct (Algorithm 1 encrypts `value || time`).
/// * `payload` — every remaining attribute. By convention `payload[0]` is
///   the *observation* (device id for WiFi), which is what observation
///   predicates (query Q4/Q5) filter on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// Values of the grid-indexed attributes.
    pub dims: Vec<u64>,
    /// Timestamp in seconds (absolute).
    pub time: u64,
    /// Remaining attribute values; `payload[0]` is the observation.
    pub payload: Vec<u64>,
}

impl Record {
    /// Convenience constructor for the WiFi-style three-attribute relation.
    #[must_use]
    pub fn spatial(location: u64, time: u64, observation: u64) -> Self {
        Record {
            dims: vec![location],
            time,
            payload: vec![observation],
        }
    }

    /// The observation value (`payload[0]`), if any.
    #[must_use]
    pub fn observation(&self) -> Option<u64> {
        self.payload.first().copied()
    }
}

/// The absolute time window covered by one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochWindow {
    /// Epoch start (inclusive), seconds. Also used as the epoch id.
    pub start: u64,
    /// Epoch duration, seconds.
    pub duration: u64,
}

impl EpochWindow {
    /// Epoch end (exclusive).
    #[must_use]
    pub fn end(&self) -> u64 {
        self.start + self.duration
    }

    /// Whether `time` falls inside this window.
    #[must_use]
    pub fn contains(&self, time: u64) -> bool {
        time >= self.start && time < self.end()
    }

    /// Whether `[t_start, t_end]` (inclusive) overlaps this window.
    #[must_use]
    pub fn overlaps(&self, t_start: u64, t_end: u64) -> bool {
        t_start < self.end() && t_end >= self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_constructor() {
        let r = Record::spatial(5, 100, 777);
        assert_eq!(r.dims, vec![5]);
        assert_eq!(r.time, 100);
        assert_eq!(r.observation(), Some(777));
    }

    #[test]
    fn observation_of_empty_payload() {
        let r = Record {
            dims: vec![1, 2],
            time: 0,
            payload: vec![],
        };
        assert_eq!(r.observation(), None);
    }

    #[test]
    fn epoch_window_contains_and_overlaps() {
        let w = EpochWindow {
            start: 100,
            duration: 50,
        };
        assert_eq!(w.end(), 150);
        assert!(w.contains(100));
        assert!(w.contains(149));
        assert!(!w.contains(150));
        assert!(!w.contains(99));

        assert!(w.overlaps(0, 100));
        assert!(w.overlaps(149, 200));
        assert!(!w.overlaps(150, 200));
        assert!(!w.overlaps(0, 99));
        assert!(w.overlaps(120, 130));
    }
}
