//! Blocking client for the Concealer wire protocol.
//!
//! A [`Connection`] wraps one TCP stream: it performs the versioned
//! hello/auth handshake on connect, then exposes the batched query
//! surface — [`Connection::execute`], [`Connection::execute_batch`],
//! [`Connection::ingest_epoch`], [`Connection::stats`] — plus *pipelined*
//! submission ([`Connection::submit_batch`] / [`Connection::wait_batch`])
//! that keeps several batches in flight on one connection without waiting
//! for each reply.
//!
//! Replies arrive in request order per connection (a protocol guarantee),
//! but `wait_batch` matches on request ids and parks out-of-order replies,
//! so callers may await pipelined responses in any order.
//!
//! The wire is part of Concealer's **untrusted zone**: a client trusts the
//! answers because they carry the enclave's verification metadata
//! (`QueryAnswer::verified`), not because it trusts the transport. The
//! canonical frame-and-message specification this client implements is
//! `PROTOCOL.md` at the repository root; a connection works identically
//! against a single `concealer-server` or a `concealer-router` fronting
//! an epoch-sharded deployment.
//!
//! ```no_run
//! use concealer_client::Connection;
//! use concealer_core::Query;
//!
//! let mut conn = Connection::connect("127.0.0.1:7171", 7, [0u8; 32], "quickstart")?;
//! let answer = conn.execute(&Query::count().at_dims([3]).between(0, 1_799))?;
//! println!("count = {:?} (verified: {})", answer.value, answer.verified);
//! conn.close()?;
//! # Ok::<(), concealer_client::ClientError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use concealer_core::{ExecOptions, Query, QueryAnswer, Record, UserHandle};
use concealer_server::protocol::{
    Request, Response, RouterStats, ServerInfo, ShardDescriptor, WirePartial, CONNECTION_LEVEL_ID,
    DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use concealer_server::{ServeStats, WireError};
use serde::frame::{read_frame, write_frame, FrameError};

/// Errors a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read, write, torn frame).
    Io(std::io::Error),
    /// A reply frame did not decode as a [`Response`].
    Decode(String),
    /// The server closed the connection.
    Closed,
    /// The handshake was refused or answered unexpectedly.
    Handshake(String),
    /// The server answered with a structured error reply.
    Server(WireError),
    /// The server answered with the wrong reply shape or id.
    Protocol(String),
    /// A configured connect/read/write timeout elapsed
    /// ([`ConnectOptions`]). A timeout mid-reply leaves the stream
    /// misaligned on a partial frame, so the connection should be
    /// dropped, not retried.
    TimedOut,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Decode(e) => write!(f, "reply decode error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Handshake(e) => write!(f, "handshake failed: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol violation: {e}"),
            ClientError::TimedOut => write!(f, "operation timed out"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Server(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::from(e),
            FrameError::Decode(e) => ClientError::Decode(e.to_string()),
            FrameError::Closed => ClientError::Closed,
            FrameError::TooLarge { len, max } => ClientError::Decode(format!(
                "reply frame of {len} bytes exceeds the client's {max}-byte limit"
            )),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        // A timed-out socket read surfaces as `WouldBlock` on Unix and
        // `TimedOut` on Windows; fold both into the dedicated variant.
        match e.kind() {
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => ClientError::TimedOut,
            _ => ClientError::Io(e),
        }
    }
}

/// Connection-establishment options for
/// [`Connection::connect_with_options`]: every field `None` (the
/// [`Default`]) reproduces plain [`Connection::connect`] — block
/// indefinitely on the OS defaults.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnectOptions {
    /// Cap on TCP connection establishment per resolved address.
    pub connect_timeout: Option<Duration>,
    /// Cap on each blocking read, including the handshake reply — this is
    /// what turns a server that accepted but stopped responding into a
    /// clean [`ClientError::TimedOut`] instead of a hang.
    pub read_timeout: Option<Duration>,
    /// Cap on each blocking write (a server that stopped *reading* while
    /// the client streams a large request).
    pub write_timeout: Option<Duration>,
}

/// A ticket for a pipelined request, redeemed with
/// [`Connection::wait_batch`] (or the matching `wait_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pending {
    id: u64,
}

/// One authenticated connection to a Concealer server.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    info: ServerInfo,
    next_id: u64,
    /// Replies read while waiting for a different id (pipelining out of
    /// order), parked until their ticket is redeemed.
    parked: BTreeMap<u64, Response>,
}

impl Connection {
    /// Connect and run the hello/auth handshake as `user_id` with the
    /// credential the data provider issued (`UserHandle::credential.0`).
    pub fn connect(
        addr: impl ToSocketAddrs,
        user_id: u64,
        credential: [u8; 32],
        client_name: &str,
    ) -> Result<Connection, ClientError> {
        Self::connect_with_options(
            addr,
            user_id,
            credential,
            client_name,
            ConnectOptions::default(),
        )
    }

    /// [`Connection::connect`] with explicit timeouts; see
    /// [`ConnectOptions`]. Timeouts apply to the handshake and stay in
    /// effect for the life of the connection
    /// ([`Connection::set_read_timeout`] can change them later).
    pub fn connect_with_options(
        addr: impl ToSocketAddrs,
        user_id: u64,
        credential: [u8; 32],
        client_name: &str,
        options: ConnectOptions,
    ) -> Result<Connection, ClientError> {
        let stream = match options.connect_timeout {
            None => TcpStream::connect(addr)?,
            Some(limit) => {
                // `TcpStream::connect_timeout` takes a single resolved
                // address; mirror `connect`'s semantics by trying each in
                // turn and reporting the last failure.
                let mut last_err: Option<std::io::Error> = None;
                let mut connected = None;
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, limit) {
                        Ok(stream) => {
                            connected = Some(stream);
                            break;
                        }
                        Err(e) => last_err = Some(e),
                    }
                }
                match connected {
                    Some(stream) => stream,
                    None => {
                        return Err(last_err.map(ClientError::from).unwrap_or_else(|| {
                            ClientError::Io(std::io::Error::new(
                                std::io::ErrorKind::InvalidInput,
                                "address resolved to no candidates",
                            ))
                        }))
                    }
                }
            }
        };
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(options.read_timeout)?;
        stream.set_write_timeout(options.write_timeout)?;
        let mut conn = Connection {
            stream,
            info: ServerInfo {
                protocol_version: 0,
                server_name: String::new(),
                backend: String::new(),
                max_batch: 0,
                max_frame_len: DEFAULT_MAX_FRAME_LEN as u64,
                ingest_allowed: false,
            },
            next_id: 1,
            parked: BTreeMap::new(),
        };
        write_frame(
            &mut conn.stream,
            &Request::Hello {
                version: PROTOCOL_VERSION,
                user_id,
                credential,
                client_name: client_name.to_string(),
            },
        )?;
        match conn.read_response()? {
            Response::HelloOk(info) => {
                conn.info = info;
                Ok(conn)
            }
            Response::Error { error, .. } => Err(ClientError::Handshake(error.to_string())),
            other => Err(ClientError::Handshake(format!(
                "expected HelloOk, got {other:?}"
            ))),
        }
    }

    /// [`Connection::connect`] with an in-process [`UserHandle`] (test and
    /// example convenience).
    pub fn connect_user(
        addr: impl ToSocketAddrs,
        user: &UserHandle,
        client_name: &str,
    ) -> Result<Connection, ClientError> {
        Self::connect(addr, user.user_id.0, user.credential.0, client_name)
    }

    /// Connect **without** authenticating: no `Hello` is sent, so only
    /// pre-authentication requests — [`Connection::shard_info`] — are
    /// answerable; anything else gets a `not_authenticated` refusal. This
    /// is how a router probes shard topology at startup, before it holds
    /// any client credential to forward.
    pub fn connect_probe(
        addr: impl ToSocketAddrs,
        options: ConnectOptions,
    ) -> Result<Connection, ClientError> {
        let stream = match options.connect_timeout {
            None => TcpStream::connect(addr)?,
            Some(limit) => {
                let mut last_err: Option<std::io::Error> = None;
                let mut connected = None;
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, limit) {
                        Ok(stream) => {
                            connected = Some(stream);
                            break;
                        }
                        Err(e) => last_err = Some(e),
                    }
                }
                match connected {
                    Some(stream) => stream,
                    None => {
                        return Err(last_err.map(ClientError::from).unwrap_or_else(|| {
                            ClientError::Io(std::io::Error::new(
                                std::io::ErrorKind::InvalidInput,
                                "address resolved to no candidates",
                            ))
                        }))
                    }
                }
            }
        };
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(options.read_timeout)?;
        stream.set_write_timeout(options.write_timeout)?;
        Ok(Connection {
            stream,
            info: ServerInfo {
                protocol_version: 0,
                server_name: String::new(),
                backend: String::new(),
                max_batch: 0,
                max_frame_len: DEFAULT_MAX_FRAME_LEN as u64,
                ingest_allowed: false,
            },
            next_id: 1,
            parked: BTreeMap::new(),
        })
    }

    /// What the server reported in the handshake.
    #[must_use]
    pub fn server_info(&self) -> &ServerInfo {
        &self.info
    }

    /// Change the per-read timeout on the live connection (`None` blocks
    /// indefinitely). On [`ClientError::TimedOut`] the stream may be
    /// misaligned mid-frame — drop the connection rather than reuse it.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        Ok(self.stream.set_read_timeout(timeout)?)
    }

    // ---------------------------------------------------------------
    // Synchronous calls (submit + wait in one step)
    // ---------------------------------------------------------------

    /// Execute one query with the server's default options.
    pub fn execute(&mut self, query: &Query) -> Result<QueryAnswer, ClientError> {
        self.execute_opt(query, None)
    }

    /// Execute one query with explicit options.
    pub fn execute_with(
        &mut self,
        query: &Query,
        options: ExecOptions,
    ) -> Result<QueryAnswer, ClientError> {
        self.execute_opt(query, Some(options))
    }

    fn execute_opt(
        &mut self,
        query: &Query,
        options: Option<ExecOptions>,
    ) -> Result<QueryAnswer, ClientError> {
        let pending = self.submit_execute(query, options)?;
        self.wait_execute(pending)
    }

    /// Execute a batch with the server's default options.
    pub fn execute_batch(
        &mut self,
        queries: &[Query],
    ) -> Result<Vec<Result<QueryAnswer, WireError>>, ClientError> {
        let pending = self.submit_batch(queries, None)?;
        self.wait_batch(pending)
    }

    /// Execute a batch with explicit options (e.g. BPB + parallelism for
    /// cross-query dedup on the server).
    pub fn execute_batch_with(
        &mut self,
        queries: &[Query],
        options: ExecOptions,
    ) -> Result<Vec<Result<QueryAnswer, WireError>>, ClientError> {
        let pending = self.submit_batch(queries, Some(options))?;
        self.wait_batch(pending)
    }

    /// Ingest one epoch of cleartext records (the simulated data-provider
    /// channel); returns the rows stored (reals + fakes).
    pub fn ingest_epoch(
        &mut self,
        epoch_start: u64,
        records: &[Record],
    ) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        write_frame(
            &mut self.stream,
            &Request::IngestEpoch {
                id,
                epoch_start,
                records: records.to_vec(),
            },
        )?;
        match self.wait_for(id)? {
            Response::IngestOk { rows_stored, .. } => Ok(rows_stored),
            other => Err(unexpected("IngestOk", &other)),
        }
    }

    /// Fetch the backend's stats profile.
    pub fn stats(&mut self) -> Result<concealer_server::WireStats, ClientError> {
        let id = self.fresh_id();
        write_frame(&mut self.stream, &Request::Stats { id })?;
        match self.wait_for(id)? {
            Response::StatsOk { stats, .. } => Ok(stats),
            other => Err(unexpected("StatsOk", &other)),
        }
    }

    /// Fetch the serving core's live counters: mode, connection counts,
    /// in-flight/backlog depth, loop iterations.
    pub fn serve_stats(&mut self) -> Result<ServeStats, ClientError> {
        let id = self.fresh_id();
        write_frame(&mut self.stream, &Request::ServeStats { id })?;
        match self.wait_for(id)? {
            Response::ServeStatsOk { stats, .. } => Ok(stats),
            other => Err(unexpected("ServeStatsOk", &other)),
        }
    }

    /// Ask which epoch-hash slice the server owns (answerable before
    /// authentication; see [`Connection::connect_probe`]). An unsharded
    /// server reports itself as slice `0/1`.
    pub fn shard_info(&mut self) -> Result<ShardDescriptor, ClientError> {
        let id = self.fresh_id();
        write_frame(&mut self.stream, &Request::ShardInfo { id })?;
        match self.wait_for(id)? {
            Response::ShardInfoOk { shard, .. } => Ok(shard),
            other => Err(unexpected("ShardInfoOk", &other)),
        }
    }

    /// Fetch a router's per-shard load accounting. Shard servers refuse
    /// this with a `protocol_violation` error — it only means something
    /// at the routing tier.
    pub fn router_stats(&mut self) -> Result<RouterStats, ClientError> {
        let id = self.fresh_id();
        write_frame(&mut self.stream, &Request::RouterStats { id })?;
        match self.wait_for(id)? {
            Response::RouterStatsOk { stats, .. } => Ok(stats),
            other => Err(unexpected("RouterStatsOk", &other)),
        }
    }

    /// Promote the server's read-only replica store to writer (the
    /// failover half of replica sets; idempotent on a server that is
    /// already the writer). Returns the number of epochs the promotion's
    /// recovery pass newly registered.
    pub fn promote(&mut self) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        write_frame(&mut self.stream, &Request::Promote { id })?;
        match self.wait_for(id)? {
            Response::PromoteOk {
                epochs_registered, ..
            } => Ok(epochs_registered),
            other => Err(unexpected("PromoteOk", &other)),
        }
    }

    /// Request a graceful server-wide shutdown and wait for the ack.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        write_frame(&mut self.stream, &Request::Shutdown { id })?;
        match self.wait_for(id)? {
            Response::ShutdownOk { .. } => Ok(()),
            other => Err(unexpected("ShutdownOk", &other)),
        }
    }

    /// Close the connection cleanly (Goodbye / Bye). Replies to pipelined
    /// requests whose tickets were never redeemed are drained and
    /// discarded — the server answers in order, so they arrive before the
    /// `Bye`; only a connection-level error aborts the close.
    pub fn close(mut self) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &Request::Goodbye)?;
        loop {
            match self.read_response()? {
                Response::Bye => return Ok(()),
                Response::Error {
                    id: CONNECTION_LEVEL_ID,
                    error,
                } => return Err(ClientError::Server(error)),
                _unredeemed_pipelined_reply => {}
            }
        }
    }

    // ---------------------------------------------------------------
    // Pipelined submission
    // ---------------------------------------------------------------

    /// Submit one query without waiting for the reply.
    pub fn submit_execute(
        &mut self,
        query: &Query,
        options: Option<ExecOptions>,
    ) -> Result<Pending, ClientError> {
        let id = self.fresh_id();
        write_frame(
            &mut self.stream,
            &Request::Execute {
                id,
                query: query.clone(),
                options,
            },
        )?;
        Ok(Pending { id })
    }

    /// Redeem a [`Connection::submit_execute`] ticket.
    pub fn wait_execute(&mut self, pending: Pending) -> Result<QueryAnswer, ClientError> {
        match self.wait_for(pending.id)? {
            Response::Answer { answer, .. } => Ok(answer),
            other => Err(unexpected("Answer", &other)),
        }
    }

    /// Submit a batch without waiting for the reply; several batches can
    /// be in flight on one connection (the server answers in order, the
    /// client matches ids).
    pub fn submit_batch(
        &mut self,
        queries: &[Query],
        options: Option<ExecOptions>,
    ) -> Result<Pending, ClientError> {
        let id = self.fresh_id();
        write_frame(
            &mut self.stream,
            &Request::ExecuteBatch {
                id,
                queries: queries.to_vec(),
                options,
            },
        )?;
        Ok(Pending { id })
    }

    /// Redeem a [`Connection::submit_batch`] ticket: per-query outcomes,
    /// positionally aligned with the submitted queries.
    pub fn wait_batch(
        &mut self,
        pending: Pending,
    ) -> Result<Vec<Result<QueryAnswer, WireError>>, ClientError> {
        match self.wait_for(pending.id)? {
            Response::BatchAnswer { results, .. } => Ok(results
                .into_iter()
                .map(concealer_server::WireResult::into_result)
                .collect()),
            other => Err(unexpected("BatchAnswer", &other)),
        }
    }

    /// Submit a partial execution without waiting: the server answers
    /// with per-epoch partials over only the epochs it holds (the shard
    /// half of multi-node serving; see `concealer_core::merge_partials`).
    pub fn submit_partial(
        &mut self,
        query: &Query,
        options: Option<ExecOptions>,
    ) -> Result<Pending, ClientError> {
        let id = self.fresh_id();
        write_frame(
            &mut self.stream,
            &Request::ExecutePartial {
                id,
                query: query.clone(),
                options,
            },
        )?;
        Ok(Pending { id })
    }

    /// Redeem a [`Connection::submit_partial`] ticket. The outer `Result`
    /// is the transport; the inner one is the shard's structured outcome
    /// (kept structured so a router can merge errors positionally).
    #[allow(clippy::type_complexity)]
    pub fn wait_partial(
        &mut self,
        pending: Pending,
    ) -> Result<Result<Vec<WirePartial>, WireError>, ClientError> {
        match self.wait_for(pending.id)? {
            Response::PartialAnswer { result, .. } => Ok(result.into_result()),
            other => Err(unexpected("PartialAnswer", &other)),
        }
    }

    /// Submit a batch of partial executions without waiting; the shard
    /// deduplicates `(epoch, bin)` fetches across the batch within its
    /// slice, exactly as a single-process `ExecuteBatch` would.
    pub fn submit_batch_partial(
        &mut self,
        queries: &[Query],
        options: Option<ExecOptions>,
    ) -> Result<Pending, ClientError> {
        let id = self.fresh_id();
        write_frame(
            &mut self.stream,
            &Request::ExecuteBatchPartial {
                id,
                queries: queries.to_vec(),
                options,
            },
        )?;
        Ok(Pending { id })
    }

    /// Redeem a [`Connection::submit_batch_partial`] ticket: per-query
    /// partial outcomes, positionally aligned with the submitted queries.
    #[allow(clippy::type_complexity)]
    pub fn wait_batch_partial(
        &mut self,
        pending: Pending,
    ) -> Result<Vec<Result<Vec<WirePartial>, WireError>>, ClientError> {
        match self.wait_for(pending.id)? {
            Response::BatchPartialAnswer { results, .. } => Ok(results
                .into_iter()
                .map(concealer_server::protocol::WirePartialResult::into_result)
                .collect()),
            other => Err(unexpected("BatchPartialAnswer", &other)),
        }
    }

    // ---------------------------------------------------------------
    // Plumbing
    // ---------------------------------------------------------------

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        // Accept replies up to the larger of the default cap and the
        // limit the server advertised in the handshake — a server
        // configured for bigger frames (large CollectRows replies) must
        // not have its answers rejected client-side. During the
        // handshake itself `info.max_frame_len` already holds the
        // default, so the cap is never zero.
        let cap = usize::try_from(self.info.max_frame_len)
            .unwrap_or(usize::MAX)
            .max(DEFAULT_MAX_FRAME_LEN);
        Ok(read_frame(&mut self.stream, cap)?)
    }

    /// Read until the reply for `id` arrives, parking other ids. A
    /// structured error reply for `id` — or a connection-level error
    /// (id 0) — surfaces as [`ClientError::Server`].
    fn wait_for(&mut self, id: u64) -> Result<Response, ClientError> {
        if let Some(parked) = self.parked.remove(&id) {
            return Ok(parked);
        }
        loop {
            let response = self.read_response()?;
            match response {
                Response::Error {
                    id: reply_id,
                    error,
                } if reply_id == id || reply_id == CONNECTION_LEVEL_ID => {
                    return Err(ClientError::Server(error))
                }
                response if response.id() == id => return Ok(response),
                response => {
                    self.parked.insert(response.id(), response);
                }
            }
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    match got {
        Response::Error { error, .. } => ClientError::Server(error.clone()),
        other => ClientError::Protocol(format!("expected {wanted}, got {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    /// A server that never answers the handshake must produce a clean
    /// `TimedOut`, not a hang. The listener is bound but never calls
    /// `accept` — the kernel completes the TCP handshake and swallows the
    /// `Hello`, which is exactly a server that stopped reading.
    #[test]
    fn read_timeout_turns_a_silent_server_into_timed_out() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr");

        let started = Instant::now();
        let result = Connection::connect_with_options(
            addr,
            7,
            [0u8; 32],
            "timeout-test",
            ConnectOptions {
                read_timeout: Some(Duration::from_millis(100)),
                ..ConnectOptions::default()
            },
        );
        let elapsed = started.elapsed();

        match result {
            Err(ClientError::TimedOut) => {}
            other => panic!("expected TimedOut, got {other:?}"),
        }
        assert!(
            elapsed < Duration::from_secs(5),
            "timeout took {elapsed:?}, configured 100ms"
        );
        drop(listener);
    }

    /// A configured connect timeout must bound connection establishment.
    /// The target is a TEST-NET-1 address nothing answers for; depending
    /// on the sandbox the connect either times out or is refused outright
    /// — both are acceptable, hanging is not.
    #[test]
    fn connect_timeout_fails_fast() {
        let started = Instant::now();
        let result = Connection::connect_with_options(
            "192.0.2.1:9",
            7,
            [0u8; 32],
            "connect-timeout-test",
            ConnectOptions {
                connect_timeout: Some(Duration::from_millis(250)),
                read_timeout: Some(Duration::from_millis(250)),
                ..ConnectOptions::default()
            },
        );
        let elapsed = started.elapsed();

        assert!(result.is_err(), "nothing listens on TEST-NET-1");
        match result {
            Err(ClientError::TimedOut | ClientError::Io(_) | ClientError::Closed) => {}
            other => panic!("expected a transport failure, got {other:?}"),
        }
        assert!(
            elapsed < Duration::from_secs(10),
            "connect took {elapsed:?}, configured 250ms"
        );
    }

    /// Plain `connect` must behave exactly like default options (no
    /// timeouts set) — guarded here by the error being connection refused,
    /// not a timeout, against a closed port.
    #[test]
    fn default_options_mean_no_timeouts() {
        let options = ConnectOptions::default();
        assert!(options.connect_timeout.is_none());
        assert!(options.read_timeout.is_none());
        assert!(options.write_timeout.is_none());

        // A bound-then-dropped listener leaves a port nothing listens on;
        // connecting must fail with a refusal (reported as Io), proving
        // the no-timeout path still surfaces immediate errors.
        let port = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("local addr").port()
        };
        match Connection::connect(("127.0.0.1", port), 7, [0u8; 32], "refused-test") {
            Err(ClientError::Io(_) | ClientError::Closed) => {}
            other => panic!("expected connection refused, got {other:?}"),
        }
    }
}
