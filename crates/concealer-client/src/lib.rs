//! Blocking client for the Concealer wire protocol.
//!
//! [`ClientBuilder`] is the connection surface: it resolves the address,
//! runs the protocol-v4 attestation exchange against the client's
//! [`TrustPolicy`], then the versioned hello/auth handshake, and produces
//! a [`Session`]. The session exposes the batched query surface —
//! [`Session::execute`], [`Session::execute_batch`],
//! [`Session::ingest_epoch`], [`Session::stats`] — plus *pipelined*
//! submission ([`Session::submit_batch`] / [`Session::wait_batch`]) that
//! keeps several batches in flight on one connection without waiting for
//! each reply.
//!
//! Replies arrive in request order per connection (a protocol guarantee),
//! but `wait_batch` matches on request ids and parks out-of-order replies,
//! so callers may await pipelined responses in any order.
//!
//! The wire is part of Concealer's **untrusted zone**: a client trusts the
//! answers because they carry the enclave's verification metadata
//! (`QueryAnswer::verified`) — and, since protocol v4, because it refused
//! to hand its credential to any enclave whose signed quote failed the
//! trust policy. The canonical frame-and-message specification this
//! client implements is `PROTOCOL.md` at the repository root; a session
//! works identically against a single `concealer-server` or a
//! `concealer-router` fronting an epoch-sharded deployment.
//!
//! ```no_run
//! use concealer_client::ClientBuilder;
//! use concealer_core::Query;
//!
//! let mut session = ClientBuilder::new("127.0.0.1:7171")
//!     .credential(7, [0u8; 32])
//!     .client_name("quickstart")
//!     .connect()?;
//! let answer = session.execute(&Query::count().at_dims([3]).between(0, 1_799))?;
//! println!("count = {:?} (verified: {})", answer.value, answer.verified);
//! session.close()?;
//! # Ok::<(), concealer_client::ClientError>(())
//! ```
//!
//! The pre-v4 surface (`Connection::connect` and friends) still compiles
//! as thin `#[deprecated]` shims over the builder; `MIGRATION.md` at the
//! repository root maps every old call site to its replacement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use concealer_core::{ExecOptions, Query, QueryAnswer, Record, UserHandle};
use concealer_server::protocol::{
    Request, Response, RouterStats, ServerInfo, ShardDescriptor, WirePartial, WireQuote,
    CONNECTION_LEVEL_ID, DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use concealer_server::{ServeStats, WireError};
use serde::frame::{read_frame, write_frame, FrameError};

/// Errors a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read, write, torn frame).
    Io(std::io::Error),
    /// A reply frame did not decode as a [`Response`].
    Decode(String),
    /// The server closed the connection.
    Closed,
    /// The handshake was refused or answered unexpectedly.
    Handshake(String),
    /// The server answered with a structured error reply.
    Server(WireError),
    /// The server answered with the wrong reply shape or id.
    Protocol(String),
    /// A configured connect/read/write timeout elapsed
    /// ([`ClientBuilder::connect_timeout`] and friends). A timeout
    /// mid-reply leaves the stream misaligned on a partial frame, so the
    /// connection should be dropped, not retried.
    TimedOut,
    /// The attestation exchange failed the client's [`TrustPolicy`]: the
    /// server refused the challenge, a quote's signature or nonce echo was
    /// wrong, a quote was too old, or its measurement is not an accepted
    /// one. No credential was sent.
    Attestation(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Decode(e) => write!(f, "reply decode error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Handshake(e) => write!(f, "handshake failed: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol violation: {e}"),
            ClientError::TimedOut => write!(f, "operation timed out"),
            ClientError::Attestation(e) => write!(f, "attestation failed: {e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Server(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::from(e),
            FrameError::Decode(e) => ClientError::Decode(e.to_string()),
            FrameError::Closed => ClientError::Closed,
            FrameError::TooLarge { len, max } => ClientError::Decode(format!(
                "reply frame of {len} bytes exceeds the client's {max}-byte limit"
            )),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        // A timed-out socket read surfaces as `WouldBlock` on Unix and
        // `TimedOut` on Windows; fold both into the dedicated variant.
        match e.kind() {
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => ClientError::TimedOut,
            _ => ClientError::Io(e),
        }
    }
}

/// Default bound on how old a quote's timestamp may be (seconds, either
/// direction — covers modest clock skew). Documented in `PROTOCOL.md`;
/// `ci/check-docs.sh` guards the two against drifting apart.
pub const DEFAULT_MAX_QUOTE_AGE_SECS: u64 = 300;

/// What the client requires of the enclave quotes it receives before it
/// will send its credential.
///
/// The default policy *requires* attestation: quotes must be present,
/// signature-valid under the attestation root key, echo the client's
/// nonce, and be no older than [`DEFAULT_MAX_QUOTE_AGE_SECS`]. Pinning
/// specific measurements is opt-in via
/// [`TrustPolicy::accepted_measurements`].
#[derive(Debug, Clone)]
pub struct TrustPolicy {
    /// Accepted enclave measurements. Empty (the default) accepts any
    /// validly signed quote — signature, nonce echo and freshness are
    /// still enforced; non-empty additionally requires every quote's
    /// measurement to appear in this list (how an operator pins the exact
    /// enclave build fleet-wide).
    pub accepted_measurements: Vec<[u8; 32]>,
    /// Maximum age of a quote's timestamp, in either direction (allows
    /// modest clock skew between client and server).
    pub max_quote_age: Duration,
    /// Escape hatch: skip quote verification entirely. The attestation
    /// round still runs — v4 servers refuse `Hello` without it — but the
    /// quotes are accepted unexamined. For untrusted intermediaries (the
    /// router's keyless upstream face) and explicitly opted-out tooling
    /// only; never the default.
    pub allow_unattested: bool,
}

impl Default for TrustPolicy {
    fn default() -> Self {
        TrustPolicy {
            accepted_measurements: Vec::new(),
            max_quote_age: Duration::from_secs(DEFAULT_MAX_QUOTE_AGE_SECS),
            allow_unattested: false,
        }
    }
}

impl TrustPolicy {
    /// The policy of an untrusted intermediary (or opted-out tool): run
    /// the attestation round but accept the quotes unexamined.
    #[must_use]
    pub fn allow_unattested() -> Self {
        TrustPolicy {
            allow_unattested: true,
            ..TrustPolicy::default()
        }
    }

    /// Require the quote measurements to be exactly one of `measurements`
    /// (on top of signature, nonce and freshness checks).
    #[must_use]
    pub fn pinned(measurements: Vec<[u8; 32]>) -> Self {
        TrustPolicy {
            accepted_measurements: measurements,
            ..TrustPolicy::default()
        }
    }

    /// Check one received quote against this policy. `nonce` is the
    /// challenge the client sent; `now` is the client's clock (seconds
    /// since the Unix epoch).
    fn check(&self, quote: &WireQuote, nonce: &[u8; 32], now: u64) -> Result<(), String> {
        let enclave_quote = concealer_enclave::Quote {
            measurement: quote.measurement,
            code_version: quote.code_version,
            timestamp: quote.timestamp,
            nonce: quote.nonce,
            signature: quote.signature,
        };
        if !concealer_enclave::attest::verify_signature(&enclave_quote) {
            return Err(format!(
                "quote from shard {} member {} has an invalid signature",
                quote.shard_index, quote.member
            ));
        }
        if &quote.nonce != nonce {
            return Err(format!(
                "quote from shard {} member {} echoes the wrong nonce",
                quote.shard_index, quote.member
            ));
        }
        let age = now.abs_diff(quote.timestamp);
        if age > self.max_quote_age.as_secs() {
            return Err(format!(
                "quote from shard {} member {} is {age}s old (policy allows {}s)",
                quote.shard_index,
                quote.member,
                self.max_quote_age.as_secs()
            ));
        }
        if !self.accepted_measurements.is_empty()
            && !self.accepted_measurements.contains(&quote.measurement)
        {
            return Err(format!(
                "quote from shard {} member {} reports a measurement not in the accepted set",
                quote.shard_index, quote.member
            ));
        }
        Ok(())
    }
}

/// A fresh attestation nonce. No RNG dependency: hash the wall clock, a
/// process-global counter and the process id — uniqueness (not secrecy)
/// is what replay protection needs, since the nonce travels in cleartext
/// anyway.
fn fresh_nonce() -> [u8; 32] {
    use std::hash::{DefaultHasher, Hash, Hasher};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos());
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut nonce = [0u8; 32];
    for (i, chunk) in nonce.chunks_mut(8).enumerate() {
        let mut h = DefaultHasher::new();
        nanos.hash(&mut h);
        count.hash(&mut h);
        std::process::id().hash(&mut h);
        i.hash(&mut h);
        chunk.copy_from_slice(&h.finish().to_le_bytes());
    }
    nonce
}

/// Connection-establishment options for the deprecated
/// [`Session::connect_with_options`] shim. New code sets timeouts on
/// [`ClientBuilder`] directly.
#[deprecated(
    since = "0.10.0",
    note = "set timeouts on ClientBuilder (connect_timeout/read_timeout/write_timeout); \
            see MIGRATION.md"
)]
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnectOptions {
    /// Cap on TCP connection establishment per resolved address.
    pub connect_timeout: Option<Duration>,
    /// Cap on each blocking read, including the handshake reply — this is
    /// what turns a server that accepted but stopped responding into a
    /// clean [`ClientError::TimedOut`] instead of a hang.
    pub read_timeout: Option<Duration>,
    /// Cap on each blocking write (a server that stopped *reading* while
    /// the client streams a large request).
    pub write_timeout: Option<Duration>,
}

/// A ticket for a pipelined request, redeemed with
/// [`Session::wait_batch`] (or the matching `wait_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pending {
    id: u64,
}

/// Builds a [`Session`]: address, identity, timeouts and trust policy,
/// then [`ClientBuilder::connect`] (attest → verify → hello) or
/// [`ClientBuilder::probe`] (attest → verify only — the pre-auth
/// surface).
///
/// The address is resolved eagerly in [`ClientBuilder::new`], so a bad
/// address fails at connect time with the original resolution error.
#[derive(Debug)]
pub struct ClientBuilder {
    addrs: std::io::Result<Vec<SocketAddr>>,
    credential: Option<(u64, [u8; 32])>,
    client_name: String,
    connect_timeout: Option<Duration>,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    trust: TrustPolicy,
    attest_nonce: Option<[u8; 32]>,
}

impl ClientBuilder {
    /// Start building a session to `addr`. Resolution happens now; the
    /// outcome surfaces from [`ClientBuilder::connect`] /
    /// [`ClientBuilder::probe`].
    #[must_use]
    pub fn new(addr: impl ToSocketAddrs) -> ClientBuilder {
        ClientBuilder {
            addrs: addr.to_socket_addrs().map(Iterator::collect),
            credential: None,
            client_name: "concealer-client".to_string(),
            connect_timeout: None,
            read_timeout: None,
            write_timeout: None,
            trust: TrustPolicy::default(),
            attest_nonce: None,
        }
    }

    /// Authenticate as `user_id` with the credential the data provider
    /// issued (`UserHandle::credential.0`). Required for
    /// [`ClientBuilder::connect`]; ignored by [`ClientBuilder::probe`].
    #[must_use]
    pub fn credential(mut self, user_id: u64, credential: [u8; 32]) -> ClientBuilder {
        self.credential = Some((user_id, credential));
        self
    }

    /// [`ClientBuilder::credential`] from an in-process [`UserHandle`]
    /// (test and example convenience).
    #[must_use]
    pub fn user(self, user: &UserHandle) -> ClientBuilder {
        self.credential(user.user_id.0, user.credential.0)
    }

    /// Free-form client identification, sent in the hello (server logs
    /// only). Defaults to `"concealer-client"`.
    #[must_use]
    pub fn client_name(mut self, name: &str) -> ClientBuilder {
        self.client_name = name.to_string();
        self
    }

    /// Cap TCP connection establishment per resolved address.
    #[must_use]
    pub fn connect_timeout(mut self, timeout: Duration) -> ClientBuilder {
        self.connect_timeout = Some(timeout);
        self
    }

    /// Cap each blocking read, including attestation and handshake
    /// replies — what turns a server that accepted but stopped responding
    /// into a clean [`ClientError::TimedOut`] instead of a hang.
    #[must_use]
    pub fn read_timeout(mut self, timeout: Duration) -> ClientBuilder {
        self.read_timeout = Some(timeout);
        self
    }

    /// Cap each blocking write (a server that stopped *reading* while the
    /// client streams a large request).
    #[must_use]
    pub fn write_timeout(mut self, timeout: Duration) -> ClientBuilder {
        self.write_timeout = Some(timeout);
        self
    }

    /// Replace the default [`TrustPolicy`] (which requires validly
    /// signed, fresh quotes).
    #[must_use]
    pub fn trust_policy(mut self, policy: TrustPolicy) -> ClientBuilder {
        self.trust = policy;
        self
    }

    /// Use `nonce` as the attestation challenge instead of generating a
    /// fresh one. This is how an intermediary (the router) forwards a
    /// *client's* challenge to its upstreams, so the quotes it relays
    /// echo the nonce the end client chose and remain end-to-end
    /// replay-protected across the untrusted hop.
    #[must_use]
    pub fn attest_nonce(mut self, nonce: [u8; 32]) -> ClientBuilder {
        self.attest_nonce = Some(nonce);
        self
    }

    /// Connect, attest, verify the quotes against the trust policy, then
    /// authenticate. Fails with [`ClientError::Attestation`] — before any
    /// credential crosses the wire — if the quotes do not satisfy the
    /// policy.
    pub fn connect(self) -> Result<Session, ClientError> {
        let Some((user_id, credential)) = self.credential else {
            return Err(ClientError::Handshake(
                "no credential configured; call ClientBuilder::credential (or .user) \
                 before connect, or use probe() for the pre-auth surface"
                    .to_string(),
            ));
        };
        let client_name = self.client_name.clone();
        let mut session = self.open_attested()?;
        write_frame(
            &mut session.stream,
            &Request::Hello {
                version: PROTOCOL_VERSION,
                user_id,
                credential,
                client_name,
            },
        )?;
        match session.read_response()? {
            Response::HelloOk(info) => {
                session.info = info;
                Ok(session)
            }
            Response::Error { error, .. } => Err(ClientError::Handshake(error.to_string())),
            other => Err(ClientError::Handshake(format!(
                "expected HelloOk, got {other:?}"
            ))),
        }
    }

    /// Connect and attest **without** authenticating: no `Hello` is sent,
    /// so only pre-authentication requests — [`Session::shard_info`] —
    /// are answerable; anything else gets a `not_authenticated` refusal.
    /// This is how a router probes shard topology at startup, before it
    /// holds any client credential to forward.
    pub fn probe(self) -> Result<Session, ClientError> {
        self.open_attested()
    }

    /// Open the TCP stream and run the attestation round.
    fn open_attested(self) -> Result<Session, ClientError> {
        let addrs = self.addrs?;
        let stream = match self.connect_timeout {
            None => {
                // Mirror `TcpStream::connect(&[SocketAddr])`: try each
                // resolved candidate, report the last failure.
                TcpStream::connect(addrs.as_slice())?
            }
            Some(limit) => {
                let mut last_err: Option<std::io::Error> = None;
                let mut connected = None;
                for resolved in &addrs {
                    match TcpStream::connect_timeout(resolved, limit) {
                        Ok(stream) => {
                            connected = Some(stream);
                            break;
                        }
                        Err(e) => last_err = Some(e),
                    }
                }
                match connected {
                    Some(stream) => stream,
                    None => {
                        return Err(last_err.map(ClientError::from).unwrap_or_else(|| {
                            ClientError::Io(std::io::Error::new(
                                std::io::ErrorKind::InvalidInput,
                                "address resolved to no candidates",
                            ))
                        }))
                    }
                }
            }
        };
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(self.read_timeout)?;
        stream.set_write_timeout(self.write_timeout)?;
        let mut session = Session {
            stream,
            info: ServerInfo {
                protocol_version: 0,
                server_name: String::new(),
                backend: String::new(),
                max_batch: 0,
                max_frame_len: DEFAULT_MAX_FRAME_LEN as u64,
                ingest_allowed: false,
            },
            next_id: 1,
            parked: BTreeMap::new(),
            quotes: Vec::new(),
        };
        session.attest(&self.trust, self.attest_nonce)?;
        Ok(session)
    }
}

/// One attested (and, after [`ClientBuilder::connect`], authenticated)
/// connection to a Concealer server.
#[derive(Debug)]
pub struct Session {
    stream: TcpStream,
    info: ServerInfo,
    next_id: u64,
    /// Replies read while waiting for a different id (pipelining out of
    /// order), parked until their ticket is redeemed.
    parked: BTreeMap<u64, Response>,
    /// The quotes received (and, unless the policy opted out, verified)
    /// during the attestation round.
    quotes: Vec<WireQuote>,
}

/// The pre-v4 name for [`Session`]. The old associated constructors
/// (`Connection::connect` and friends) still work as deprecated shims.
#[deprecated(
    since = "0.10.0",
    note = "use ClientBuilder / Session; see MIGRATION.md"
)]
pub type Connection = Session;

impl Session {
    /// Run the v4 attestation round: challenge, collect quotes, verify
    /// them against `trust` (unless it opts out). Quotes are retained for
    /// [`Session::quotes`].
    fn attest(
        &mut self,
        trust: &TrustPolicy,
        nonce_override: Option<[u8; 32]>,
    ) -> Result<(), ClientError> {
        let nonce = nonce_override.unwrap_or_else(fresh_nonce);
        let id = self.fresh_id();
        write_frame(&mut self.stream, &Request::Attest { id, nonce })?;
        let quotes = match self.wait_for(id) {
            Ok(Response::AttestOk { quotes, .. }) => quotes,
            Ok(other) => return Err(unexpected("AttestOk", &other)),
            Err(ClientError::Server(e)) => {
                // A refusal of the challenge itself is an attestation
                // failure; other refusals (busy, protocol) keep their own
                // meaning — they happened during the handshake, not
                // because trust could not be established.
                return Err(
                    if e.code == concealer_server::ErrorCode::AttestationFailed {
                        ClientError::Attestation(e.to_string())
                    } else {
                        ClientError::Handshake(e.to_string())
                    },
                );
            }
            Err(e) => return Err(e),
        };
        if !trust.allow_unattested {
            if quotes.is_empty() {
                return Err(ClientError::Attestation(
                    "server produced no enclave quotes".to_string(),
                ));
            }
            let now = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map_or(0, |d| d.as_secs());
            for quote in &quotes {
                trust
                    .check(quote, &nonce, now)
                    .map_err(ClientError::Attestation)?;
            }
        }
        self.quotes = quotes;
        Ok(())
    }

    /// The enclave quotes received during the attestation round, one per
    /// serving enclave (a single server reports one; a router reports one
    /// per reachable replica-set member).
    #[must_use]
    pub fn quotes(&self) -> &[WireQuote] {
        &self.quotes
    }

    /// What the server reported in the handshake.
    #[must_use]
    pub fn server_info(&self) -> &ServerInfo {
        &self.info
    }

    /// Change the per-read timeout on the live session (`None` blocks
    /// indefinitely). On [`ClientError::TimedOut`] the stream may be
    /// misaligned mid-frame — drop the session rather than reuse it.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        Ok(self.stream.set_read_timeout(timeout)?)
    }

    // ---------------------------------------------------------------
    // Synchronous calls (submit + wait in one step)
    // ---------------------------------------------------------------

    /// Execute one query with the server's default options.
    pub fn execute(&mut self, query: &Query) -> Result<QueryAnswer, ClientError> {
        self.execute_opt(query, None)
    }

    /// Execute one query with explicit options.
    pub fn execute_with(
        &mut self,
        query: &Query,
        options: ExecOptions,
    ) -> Result<QueryAnswer, ClientError> {
        self.execute_opt(query, Some(options))
    }

    fn execute_opt(
        &mut self,
        query: &Query,
        options: Option<ExecOptions>,
    ) -> Result<QueryAnswer, ClientError> {
        let pending = self.submit_execute(query, options)?;
        self.wait_execute(pending)
    }

    /// Execute a batch with the server's default options.
    pub fn execute_batch(
        &mut self,
        queries: &[Query],
    ) -> Result<Vec<Result<QueryAnswer, WireError>>, ClientError> {
        let pending = self.submit_batch(queries, None)?;
        self.wait_batch(pending)
    }

    /// Execute a batch with explicit options (e.g. BPB + parallelism for
    /// cross-query dedup on the server).
    pub fn execute_batch_with(
        &mut self,
        queries: &[Query],
        options: ExecOptions,
    ) -> Result<Vec<Result<QueryAnswer, WireError>>, ClientError> {
        let pending = self.submit_batch(queries, Some(options))?;
        self.wait_batch(pending)
    }

    /// Ingest one epoch of cleartext records (the simulated data-provider
    /// channel); returns the rows stored (reals + fakes).
    pub fn ingest_epoch(
        &mut self,
        epoch_start: u64,
        records: &[Record],
    ) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        write_frame(
            &mut self.stream,
            &Request::IngestEpoch {
                id,
                epoch_start,
                records: records.to_vec(),
            },
        )?;
        match self.wait_for(id)? {
            Response::IngestOk { rows_stored, .. } => Ok(rows_stored),
            other => Err(unexpected("IngestOk", &other)),
        }
    }

    /// Fetch the backend's stats profile.
    pub fn stats(&mut self) -> Result<concealer_server::WireStats, ClientError> {
        let id = self.fresh_id();
        write_frame(&mut self.stream, &Request::Stats { id })?;
        match self.wait_for(id)? {
            Response::StatsOk { stats, .. } => Ok(stats),
            other => Err(unexpected("StatsOk", &other)),
        }
    }

    /// Fetch the serving core's live counters: mode, connection counts,
    /// in-flight/backlog depth, loop iterations.
    pub fn serve_stats(&mut self) -> Result<ServeStats, ClientError> {
        let id = self.fresh_id();
        write_frame(&mut self.stream, &Request::ServeStats { id })?;
        match self.wait_for(id)? {
            Response::ServeStatsOk { stats, .. } => Ok(stats),
            other => Err(unexpected("ServeStatsOk", &other)),
        }
    }

    /// Ask which epoch-hash slice the server owns (answerable before
    /// authentication; see [`ClientBuilder::probe`]). An unsharded server
    /// reports itself as slice `0/1`.
    pub fn shard_info(&mut self) -> Result<ShardDescriptor, ClientError> {
        let id = self.fresh_id();
        write_frame(&mut self.stream, &Request::ShardInfo { id })?;
        match self.wait_for(id)? {
            Response::ShardInfoOk { shard, .. } => Ok(shard),
            other => Err(unexpected("ShardInfoOk", &other)),
        }
    }

    /// Fetch a router's per-shard load accounting. Shard servers refuse
    /// this with a `protocol_violation` error — it only means something
    /// at the routing tier.
    pub fn router_stats(&mut self) -> Result<RouterStats, ClientError> {
        let id = self.fresh_id();
        write_frame(&mut self.stream, &Request::RouterStats { id })?;
        match self.wait_for(id)? {
            Response::RouterStatsOk { stats, .. } => Ok(stats),
            other => Err(unexpected("RouterStatsOk", &other)),
        }
    }

    /// Promote the server's read-only replica store to writer (the
    /// failover half of replica sets; idempotent on a server that is
    /// already the writer). Returns the number of epochs the promotion's
    /// recovery pass newly registered.
    pub fn promote(&mut self) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        write_frame(&mut self.stream, &Request::Promote { id })?;
        match self.wait_for(id)? {
            Response::PromoteOk {
                epochs_registered, ..
            } => Ok(epochs_registered),
            other => Err(unexpected("PromoteOk", &other)),
        }
    }

    /// Request a graceful server-wide shutdown and wait for the ack.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        write_frame(&mut self.stream, &Request::Shutdown { id })?;
        match self.wait_for(id)? {
            Response::ShutdownOk { .. } => Ok(()),
            other => Err(unexpected("ShutdownOk", &other)),
        }
    }

    /// Close the session cleanly (Goodbye / Bye). Replies to pipelined
    /// requests whose tickets were never redeemed are drained and
    /// discarded — the server answers in order, so they arrive before the
    /// `Bye`; only a connection-level error aborts the close.
    pub fn close(mut self) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &Request::Goodbye)?;
        loop {
            match self.read_response()? {
                Response::Bye => return Ok(()),
                Response::Error {
                    id: CONNECTION_LEVEL_ID,
                    error,
                } => return Err(ClientError::Server(error)),
                _unredeemed_pipelined_reply => {}
            }
        }
    }

    // ---------------------------------------------------------------
    // Pipelined submission
    // ---------------------------------------------------------------

    /// Submit one query without waiting for the reply.
    pub fn submit_execute(
        &mut self,
        query: &Query,
        options: Option<ExecOptions>,
    ) -> Result<Pending, ClientError> {
        let id = self.fresh_id();
        write_frame(
            &mut self.stream,
            &Request::Execute {
                id,
                query: query.clone(),
                options,
            },
        )?;
        Ok(Pending { id })
    }

    /// Redeem a [`Session::submit_execute`] ticket.
    pub fn wait_execute(&mut self, pending: Pending) -> Result<QueryAnswer, ClientError> {
        match self.wait_for(pending.id)? {
            Response::Answer { answer, .. } => Ok(answer),
            other => Err(unexpected("Answer", &other)),
        }
    }

    /// Submit a batch without waiting for the reply; several batches can
    /// be in flight on one session (the server answers in order, the
    /// client matches ids).
    pub fn submit_batch(
        &mut self,
        queries: &[Query],
        options: Option<ExecOptions>,
    ) -> Result<Pending, ClientError> {
        let id = self.fresh_id();
        write_frame(
            &mut self.stream,
            &Request::ExecuteBatch {
                id,
                queries: queries.to_vec(),
                options,
            },
        )?;
        Ok(Pending { id })
    }

    /// Redeem a [`Session::submit_batch`] ticket: per-query outcomes,
    /// positionally aligned with the submitted queries.
    pub fn wait_batch(
        &mut self,
        pending: Pending,
    ) -> Result<Vec<Result<QueryAnswer, WireError>>, ClientError> {
        match self.wait_for(pending.id)? {
            Response::BatchAnswer { results, .. } => Ok(results
                .into_iter()
                .map(concealer_server::WireResult::into_result)
                .collect()),
            other => Err(unexpected("BatchAnswer", &other)),
        }
    }

    /// Submit a partial execution without waiting: the server answers
    /// with per-epoch partials over only the epochs it holds (the shard
    /// half of multi-node serving; see `concealer_core::merge_partials`).
    pub fn submit_partial(
        &mut self,
        query: &Query,
        options: Option<ExecOptions>,
    ) -> Result<Pending, ClientError> {
        let id = self.fresh_id();
        write_frame(
            &mut self.stream,
            &Request::ExecutePartial {
                id,
                query: query.clone(),
                options,
            },
        )?;
        Ok(Pending { id })
    }

    /// Redeem a [`Session::submit_partial`] ticket. The outer `Result`
    /// is the transport; the inner one is the shard's structured outcome
    /// (kept structured so a router can merge errors positionally).
    #[allow(clippy::type_complexity)]
    pub fn wait_partial(
        &mut self,
        pending: Pending,
    ) -> Result<Result<Vec<WirePartial>, WireError>, ClientError> {
        match self.wait_for(pending.id)? {
            Response::PartialAnswer { result, .. } => Ok(result.into_result()),
            other => Err(unexpected("PartialAnswer", &other)),
        }
    }

    /// Submit a batch of partial executions without waiting; the shard
    /// deduplicates `(epoch, bin)` fetches across the batch within its
    /// slice, exactly as a single-process `ExecuteBatch` would.
    pub fn submit_batch_partial(
        &mut self,
        queries: &[Query],
        options: Option<ExecOptions>,
    ) -> Result<Pending, ClientError> {
        let id = self.fresh_id();
        write_frame(
            &mut self.stream,
            &Request::ExecuteBatchPartial {
                id,
                queries: queries.to_vec(),
                options,
            },
        )?;
        Ok(Pending { id })
    }

    /// Redeem a [`Session::submit_batch_partial`] ticket: per-query
    /// partial outcomes, positionally aligned with the submitted queries.
    #[allow(clippy::type_complexity)]
    pub fn wait_batch_partial(
        &mut self,
        pending: Pending,
    ) -> Result<Vec<Result<Vec<WirePartial>, WireError>>, ClientError> {
        match self.wait_for(pending.id)? {
            Response::BatchPartialAnswer { results, .. } => Ok(results
                .into_iter()
                .map(concealer_server::protocol::WirePartialResult::into_result)
                .collect()),
            other => Err(unexpected("BatchPartialAnswer", &other)),
        }
    }

    // ---------------------------------------------------------------
    // Plumbing
    // ---------------------------------------------------------------

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        // Accept replies up to the larger of the default cap and the
        // limit the server advertised in the handshake — a server
        // configured for bigger frames (large CollectRows replies) must
        // not have its answers rejected client-side. During the
        // handshake itself `info.max_frame_len` already holds the
        // default, so the cap is never zero.
        let cap = usize::try_from(self.info.max_frame_len)
            .unwrap_or(usize::MAX)
            .max(DEFAULT_MAX_FRAME_LEN);
        Ok(read_frame(&mut self.stream, cap)?)
    }

    /// Read until the reply for `id` arrives, parking other ids. A
    /// structured error reply for `id` — or a connection-level error
    /// (id 0) — surfaces as [`ClientError::Server`].
    fn wait_for(&mut self, id: u64) -> Result<Response, ClientError> {
        if let Some(parked) = self.parked.remove(&id) {
            return Ok(parked);
        }
        loop {
            let response = self.read_response()?;
            match response {
                Response::Error {
                    id: reply_id,
                    error,
                } if reply_id == id || reply_id == CONNECTION_LEVEL_ID => {
                    return Err(ClientError::Server(error))
                }
                response if response.id() == id => return Ok(response),
                response => {
                    self.parked.insert(response.id(), response);
                }
            }
        }
    }
}

/// The deprecated pre-v4 constructors, kept as thin shims over
/// [`ClientBuilder`] so existing call sites keep compiling (with a
/// deprecation warning pointing at `MIGRATION.md`). They enforce the
/// default [`TrustPolicy`] exactly like the builder does.
#[allow(deprecated)]
impl Session {
    /// Connect and run the attestation + hello/auth handshake as
    /// `user_id` with the credential the data provider issued.
    #[deprecated(
        since = "0.10.0",
        note = "use ClientBuilder::new(addr).credential(..).client_name(..).connect(); \
                see MIGRATION.md"
    )]
    pub fn connect(
        addr: impl ToSocketAddrs,
        user_id: u64,
        credential: [u8; 32],
        client_name: &str,
    ) -> Result<Session, ClientError> {
        ClientBuilder::new(addr)
            .credential(user_id, credential)
            .client_name(client_name)
            .connect()
    }

    /// [`Session::connect`] with explicit timeouts.
    #[deprecated(
        since = "0.10.0",
        note = "use ClientBuilder with connect_timeout/read_timeout/write_timeout; \
                see MIGRATION.md"
    )]
    pub fn connect_with_options(
        addr: impl ToSocketAddrs,
        user_id: u64,
        credential: [u8; 32],
        client_name: &str,
        options: ConnectOptions,
    ) -> Result<Session, ClientError> {
        let mut builder = ClientBuilder::new(addr)
            .credential(user_id, credential)
            .client_name(client_name);
        if let Some(t) = options.connect_timeout {
            builder = builder.connect_timeout(t);
        }
        if let Some(t) = options.read_timeout {
            builder = builder.read_timeout(t);
        }
        if let Some(t) = options.write_timeout {
            builder = builder.write_timeout(t);
        }
        builder.connect()
    }

    /// [`Session::connect`] with an in-process [`UserHandle`].
    #[deprecated(
        since = "0.10.0",
        note = "use ClientBuilder::new(addr).user(&user).connect(); see MIGRATION.md"
    )]
    pub fn connect_user(
        addr: impl ToSocketAddrs,
        user: &UserHandle,
        client_name: &str,
    ) -> Result<Session, ClientError> {
        ClientBuilder::new(addr)
            .user(user)
            .client_name(client_name)
            .connect()
    }

    /// Connect without authenticating (pre-auth surface only).
    #[deprecated(
        since = "0.10.0",
        note = "use ClientBuilder::new(addr).probe(); see MIGRATION.md"
    )]
    pub fn connect_probe(
        addr: impl ToSocketAddrs,
        options: ConnectOptions,
    ) -> Result<Session, ClientError> {
        let mut builder = ClientBuilder::new(addr);
        if let Some(t) = options.connect_timeout {
            builder = builder.connect_timeout(t);
        }
        if let Some(t) = options.read_timeout {
            builder = builder.read_timeout(t);
        }
        if let Some(t) = options.write_timeout {
            builder = builder.write_timeout(t);
        }
        builder.probe()
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    match got {
        Response::Error { error, .. } => ClientError::Server(error.clone()),
        other => ClientError::Protocol(format!("expected {wanted}, got {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    /// A server that never answers must produce a clean `TimedOut`, not a
    /// hang. The listener is bound but never calls `accept` — the kernel
    /// completes the TCP handshake and swallows the `Attest`, which is
    /// exactly a server that stopped reading.
    #[test]
    fn read_timeout_turns_a_silent_server_into_timed_out() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr");

        let started = Instant::now();
        let result = ClientBuilder::new(addr)
            .credential(7, [0u8; 32])
            .client_name("timeout-test")
            .read_timeout(Duration::from_millis(100))
            .connect();
        let elapsed = started.elapsed();

        match result {
            Err(ClientError::TimedOut) => {}
            other => panic!("expected TimedOut, got {other:?}"),
        }
        assert!(
            elapsed < Duration::from_secs(5),
            "timeout took {elapsed:?}, configured 100ms"
        );
        drop(listener);
    }

    /// A configured connect timeout must bound connection establishment.
    /// The target is a TEST-NET-1 address nothing answers for; depending
    /// on the sandbox the connect either times out or is refused outright
    /// — both are acceptable, hanging is not.
    #[test]
    fn connect_timeout_fails_fast() {
        let started = Instant::now();
        let result = ClientBuilder::new("192.0.2.1:9")
            .credential(7, [0u8; 32])
            .client_name("connect-timeout-test")
            .connect_timeout(Duration::from_millis(250))
            .read_timeout(Duration::from_millis(250))
            .connect();
        let elapsed = started.elapsed();

        assert!(result.is_err(), "nothing listens on TEST-NET-1");
        match result {
            Err(ClientError::TimedOut | ClientError::Io(_) | ClientError::Closed) => {}
            other => panic!("expected a transport failure, got {other:?}"),
        }
        assert!(
            elapsed < Duration::from_secs(10),
            "connect took {elapsed:?}, configured 250ms"
        );
    }

    /// A builder without timeouts must still surface immediate transport
    /// errors (proving the no-timeout path blocks on the OS defaults but
    /// does not swallow refusals), and the default trust policy must
    /// require attestation.
    #[test]
    fn default_builder_means_no_timeouts_and_required_attestation() {
        let policy = TrustPolicy::default();
        assert!(!policy.allow_unattested);
        assert!(policy.accepted_measurements.is_empty());
        assert_eq!(
            policy.max_quote_age,
            Duration::from_secs(DEFAULT_MAX_QUOTE_AGE_SECS)
        );

        // A bound-then-dropped listener leaves a port nothing listens on;
        // connecting must fail with a refusal (reported as Io), proving
        // the no-timeout path still surfaces immediate errors.
        let port = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("local addr").port()
        };
        let result = ClientBuilder::new(("127.0.0.1", port))
            .credential(7, [0u8; 32])
            .client_name("refused-test")
            .connect();
        match result {
            Err(ClientError::Io(_) | ClientError::Closed) => {}
            other => panic!("expected connection refused, got {other:?}"),
        }
    }

    /// Attestation nonces must differ call to call (replay protection is
    /// only as good as nonce uniqueness).
    #[test]
    fn nonces_are_unique() {
        let a = fresh_nonce();
        let b = fresh_nonce();
        assert_ne!(a, b);
        assert_ne!(a, [0u8; 32]);
    }

    /// The trust policy's individual checks: signature, nonce echo,
    /// freshness, and measurement pinning.
    #[test]
    fn trust_policy_checks_quotes() {
        let nonce = [7u8; 32];
        let now = 1_000_000u64;
        let enclave = concealer_enclave::Enclave::provision(
            concealer_core::MasterKey::from_bytes([1u8; 32]),
            concealer_enclave::UserRegistry::new(),
            concealer_enclave::EnclaveConfig::default(),
        );
        let good = enclave.quote(nonce, now);
        let wire = WireQuote {
            shard_index: 0,
            member: 0,
            measurement: good.measurement,
            code_version: good.code_version,
            timestamp: good.timestamp,
            nonce: good.nonce,
            signature: good.signature,
        };
        let policy = TrustPolicy::default();
        assert!(policy.check(&wire, &nonce, now).is_ok());

        let mut tampered = wire.clone();
        tampered.measurement[0] ^= 1;
        assert!(policy.check(&tampered, &nonce, now).is_err());

        assert!(policy.check(&wire, &[8u8; 32], now).is_err());

        let stale = now + DEFAULT_MAX_QUOTE_AGE_SECS + 1;
        assert!(policy.check(&wire, &nonce, stale).is_err());

        let pinned_wrong = TrustPolicy::pinned(vec![[0xEE; 32]]);
        assert!(pinned_wrong.check(&wire, &nonce, now).is_err());
        let pinned_right = TrustPolicy::pinned(vec![wire.measurement]);
        assert!(pinned_right.check(&wire, &nonce, now).is_ok());
    }
}
